"""Fleet chaos suite: real process faults, real kills, identical merges.

Chaos here is not monkeypatched: workers genuinely ``os._exit`` mid-task,
poison tasks genuinely fail every attempt, wedged workers genuinely stop
heartbeating and get SIGKILLed, and the supervisor itself is ``kill -9``ed
from outside.  The property every test pins is the fleet contract: the
sweep always drains, quarantines are recorded instead of fatal, and the
merged ``results.jsonl`` is byte-identical no matter how many times the
fleet died on the way there.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.exceptions import JournalError
from repro.fleet import FleetSupervisor, SweepSpec

FAST = dict(backoff_base=0.01, backoff_cap=0.1)


def sweep_spec(**overrides):
    base = dict(models=["alexnet"], ps=[2, 4], methods=["ours"],
                modes=["pow2"])
    base.update(overrides)
    return SweepSpec.from_dict(base)


def run_fleet(spec, fleet_dir, **kwargs):
    opts = dict(FAST)
    opts.update(kwargs)
    resume = opts.pop("resume", False)
    return FleetSupervisor(spec, fleet_dir, **opts).run(resume=resume)


def read_lines(fleet_dir):
    return (Path(fleet_dir) / "results.jsonl").read_text().splitlines()


class TestCleanSweep:
    def test_drains_and_merges_in_spec_order(self, tmp_path):
        spec = sweep_spec()
        report = run_fleet(spec, tmp_path / "fleet", workers=2)
        assert report.clean
        assert report.succeeded == report.tasks_total == 2
        records = [json.loads(line)
                   for line in read_lines(tmp_path / "fleet")]
        assert [r["task_id"] for r in records] == \
            [t.task_id for t in spec.expand()]
        assert all(r["cost"] > 0 for r in records)
        summary = json.loads(
            (tmp_path / "fleet" / "summary.json").read_text())
        assert summary["succeeded"] == 2 and not summary["resumed"]

    def test_merge_is_identical_across_worker_widths(self, tmp_path):
        spec = sweep_spec(seeds=[0, 1])
        run_fleet(spec, tmp_path / "narrow", workers=1)
        run_fleet(spec, tmp_path / "wide", workers=4)
        assert (tmp_path / "narrow" / "results.jsonl").read_bytes() == \
            (tmp_path / "wide" / "results.jsonl").read_bytes()

    def test_frontier_tasks_merge_their_pareto_sets(self, tmp_path):
        spec = sweep_spec(ps=[2], objectives=["cost", "frontier"])
        report = run_fleet(spec, tmp_path / "fleet", workers=2)
        assert report.clean and report.succeeded == 2
        records = [json.loads(line)
                   for line in read_lines(tmp_path / "fleet")]
        by_obj = {r["task"].get("objective", "cost"): r for r in records}
        # Scalar records keep the exact pre-frontier schema.
        assert "frontier" not in by_obj["cost"]
        pts = by_obj["frontier"]["frontier"]
        assert len(pts) >= 1
        assert pts[0]["cost"] == by_obj["frontier"]["cost"]
        assert pts[0]["cost"] == by_obj["cost"]["cost"]  # bit-identical
        for a, b in zip(pts, pts[1:]):
            assert a["cost"] <= b["cost"]
            assert a["peak_bytes"] > b["peak_bytes"]
        assert all(isinstance(p["strategy"], dict) for p in pts)

    def test_resume_rejects_an_edited_spec(self, tmp_path):
        run_fleet(sweep_spec(), tmp_path / "fleet", workers=2)
        with pytest.raises(JournalError, match="fingerprint"):
            run_fleet(sweep_spec(seeds=[7]), tmp_path / "fleet",
                      workers=2, resume=True)


class TestWorkerChaos:
    def test_transient_worker_death_is_retried(self, tmp_path):
        spec = sweep_spec(ps=[2], tasks=[{
            "model": "alexnet", "p": 4,
            "chaos": {"kind": "exit", "attempts": 1}}])
        report = run_fleet(spec, tmp_path / "fleet", workers=2)
        assert report.clean
        assert report.worker_crashes == 1
        assert report.retries == 1
        assert len(read_lines(tmp_path / "fleet")) == 2

    def test_poison_task_is_quarantined_not_fatal(self, tmp_path):
        spec = sweep_spec(ps=[2], tasks=[{
            "model": "alexnet", "p": 4,
            "chaos": {"kind": "raise", "message": "poisoned"}}])
        report = run_fleet(spec, tmp_path / "fleet", workers=2,
                           max_attempts=2)
        assert not report.clean
        assert report.succeeded == 1 and report.quarantined == 1
        assert report.retries == 1  # first failure retried, second sealed
        [q] = report.quarantined_tasks
        assert "poisoned" in q["last_error"]["detail"]
        # The healthy task still merged; the poison one is excluded.
        records = [json.loads(line)
                   for line in read_lines(tmp_path / "fleet")]
        assert len(records) == 1 and records[0]["task"]["p"] == 2
        summary = json.loads(
            (tmp_path / "fleet" / "summary.json").read_text())
        assert summary["quarantined"] == 1
        assert summary["quarantined_tasks"][0]["task_id"] == q["task_id"]

    def test_wedged_worker_is_sigkilled_and_reassigned(self, tmp_path):
        spec = sweep_spec(ps=[2], tasks=[{
            "model": "alexnet", "p": 4,
            "chaos": {"kind": "hang", "attempts": 1, "seconds": 60}}])
        report = run_fleet(spec, tmp_path / "fleet", workers=2,
                           straggler_after=1.0)
        assert report.clean
        assert report.stragglers_killed == 1
        assert len(read_lines(tmp_path / "fleet")) == 2


def cli_sweep(spec_path, fleet_dir, *extra):
    return [sys.executable, "-m", "repro.cli", "sweep",
            "--spec", str(spec_path), "--fleet-dir", str(fleet_dir),
            "--workers", "4", "--max-retries", "1",
            "--straggler-after", "30", *extra]


def wait_for_done(fleet_dir, at_least, timeout=60.0):
    """Block until the manifest records ``at_least`` done tasks."""
    deadline = time.monotonic() + timeout
    manifest = Path(fleet_dir) / "manifest.json"
    while time.monotonic() < deadline:
        try:
            state = json.loads(manifest.read_text())
        except (OSError, json.JSONDecodeError):
            state = None
        if state is not None:
            done = sum(1 for rec in state["tasks"].values()
                       if rec["state"] == "done")
            if done >= at_least:
                return done
        time.sleep(0.05)
    raise AssertionError(
        f"fleet never reached {at_least} done tasks in {timeout}s")


class TestSupervisorChaos:
    """The acceptance sweep: >= 50 tasks surviving every fault at once.

    One worker dies with ``os._exit`` (retried), one poison task fails
    every attempt (quarantined, exit code 7), and the supervisor itself
    is SIGKILLed mid-sweep; ``--resume`` must finish the job with a
    merged results file byte-identical to the uninterrupted run's.
    """

    @pytest.fixture(scope="class")
    def big_spec(self, tmp_path_factory):
        spec = sweep_spec(
            ps=[2, 3, 4, 5],
            seeds=list(range(12)),
            tasks=[
                {"model": "alexnet", "p": 6,
                 "chaos": {"kind": "exit", "attempts": 1}},
                {"model": "alexnet", "p": 7,
                 "chaos": {"kind": "raise", "message": "poison"}},
            ])
        assert len(spec.expand()) == 50
        path = tmp_path_factory.mktemp("spec") / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        return path

    @pytest.fixture(scope="class")
    def uninterrupted(self, big_spec, tmp_path_factory):
        fleet = tmp_path_factory.mktemp("fresh") / "fleet"
        proc = subprocess.run(cli_sweep(big_spec, fleet),
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 7, proc.stderr  # the poison task
        return fleet

    def test_kill9_resume_is_bit_identical(self, big_spec, uninterrupted,
                                           tmp_path):
        fleet = tmp_path / "fleet"
        proc = subprocess.Popen(cli_sweep(big_spec, fleet),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            wait_for_done(fleet, at_least=5)
            os.kill(proc.pid, signal.SIGKILL)
            assert proc.wait(timeout=30) == -signal.SIGKILL
        finally:
            if proc.poll() is None:
                proc.kill()
        # kill -9 left no merge and (likely) running slots behind.
        assert not (fleet / "results.jsonl").exists()

        resumed = subprocess.run(
            cli_sweep(big_spec, fleet, "--resume"),
            capture_output=True, text=True, timeout=300)
        assert resumed.returncode == 7, resumed.stderr
        assert "resumed mid-sweep" in resumed.stdout

        assert (fleet / "results.jsonl").read_bytes() == \
            (uninterrupted / "results.jsonl").read_bytes()
        summary = json.loads((fleet / "summary.json").read_text())
        assert summary["succeeded"] == 49
        assert summary["quarantined"] == 1
        assert summary["resumed"] is True

    def test_sigint_exits_6_and_resumes_clean(self, big_spec,
                                              uninterrupted, tmp_path):
        fleet = tmp_path / "fleet"
        proc = subprocess.Popen(cli_sweep(big_spec, fleet),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            wait_for_done(fleet, at_least=3)
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=60) == 6
        finally:
            if proc.poll() is None:
                proc.kill()

        resumed = subprocess.run(
            cli_sweep(big_spec, fleet, "--resume"),
            capture_output=True, text=True, timeout=300)
        assert resumed.returncode == 7, resumed.stderr
        assert (fleet / "results.jsonl").read_bytes() == \
            (uninterrupted / "results.jsonl").read_bytes()
