"""Unit tests for tensor specifications."""

import numpy as np
import pytest

from repro.core.dims import Dim
from repro.core.exceptions import GraphError
from repro.core.tensors import DTYPE_BYTES, TensorSpec
from repro.ops.base import OpSpec


def gemm_op(name="g", b=4, n=6, c=8) -> OpSpec:
    return OpSpec(
        name=name,
        kind="fc",
        dims=(Dim("b", b), Dim("n", n), Dim("c", c)),
        inputs={
            "in": TensorSpec(axes=("b", "c")),
            "w": TensorSpec(axes=("c", "n"), is_param=True),
        },
        outputs={"out": TensorSpec(axes=("b", "n"))},
        reduction_dims=frozenset({"c"}),
        flops_per_point=2.0,
    )


class TestShapeVolume:
    def test_shape(self):
        op = gemm_op()
        assert op.inputs["in"].shape(op) == (4, 8)
        assert op.inputs["w"].shape(op) == (8, 6)
        assert op.outputs["out"].shape(op) == (4, 6)

    def test_volume_and_bytes(self):
        op = gemm_op()
        assert op.inputs["w"].volume(op) == 48
        assert op.inputs["w"].nbytes(op) == 48 * DTYPE_BYTES

    def test_scale_multiplies_volume_not_shape(self):
        op = OpSpec(
            name="s", kind="t", dims=(Dim("a", 5),),
            inputs={"w": TensorSpec(axes=("a",), is_param=True, scale=3.0)},
            outputs={"out": TensorSpec(axes=("a",))})
        assert op.inputs["w"].volume(op) == 15.0
        assert op.inputs["w"].shape(op) == (5,)


class TestSplits:
    def test_splits_map_axes_to_dims(self):
        op = gemm_op()
        cfgs = np.array([[2, 3, 4]])
        assert op.inputs["in"].splits(op, cfgs).tolist() == [[2, 4]]
        assert op.inputs["w"].splits(op, cfgs).tolist() == [[4, 3]]
        assert op.outputs["out"].splits(op, cfgs).tolist() == [[2, 3]]

    def test_shard_volume(self):
        op = gemm_op()
        cfgs = np.array([[1, 1, 1], [2, 1, 2]])
        out = op.inputs["in"].shard_volume(op, cfgs)
        assert out.tolist() == [32.0, 8.0]

    def test_empty_axes(self):
        op = OpSpec(name="e", kind="t", dims=(Dim("a", 4),),
                    inputs={"in": TensorSpec(axes=())},
                    outputs={"out": TensorSpec(axes=("a",))})
        cfgs = np.array([[1], [4]])
        assert op.inputs["in"].shard_volume(op, cfgs).tolist() == [1.0, 1.0]


class TestReplication:
    def test_weight_replication_over_batch(self):
        op = gemm_op()
        cfgs = np.array([[1, 1, 1], [4, 1, 1], [2, 3, 1]])
        rep = op.inputs["w"].replication(op, cfgs)
        assert rep.tolist() == [1, 4, 2]

    def test_input_replication_over_out_channels(self):
        op = gemm_op()
        rep = op.inputs["in"].replication(op, np.array([[1, 6, 1]]))
        assert rep.tolist() == [6]

    def test_full_coverage_no_replication(self):
        op = gemm_op()
        rep = op.outputs["out"].replication(op, np.array([[2, 3, 1]]))
        assert rep.tolist() == [1]


class TestGradSyncVolume:
    def test_dense_equals_shard(self):
        op = gemm_op()
        cfgs = np.array([[2, 1, 1]])
        w = op.inputs["w"]
        assert w.grad_sync_volume(op, cfgs).tolist() == \
            w.shard_volume(op, cfgs).tolist()

    def test_sparse_cap(self):
        op = OpSpec(
            name="emb", kind="t", dims=(Dim("b", 4), Dim("v", 100)),
            inputs={"w": TensorSpec(axes=("v",), is_param=True,
                                    sparse_grad_elements=10.0)},
            outputs={"out": TensorSpec(axes=("b",))})
        vol = op.inputs["w"].grad_sync_volume(op, np.array([[1, 1]]))
        assert vol.tolist() == [10.0]

    def test_sparse_cap_scales_with_shard_fraction(self):
        op = OpSpec(
            name="emb", kind="t", dims=(Dim("b", 4), Dim("v", 100)),
            inputs={"w": TensorSpec(axes=("v",), is_param=True,
                                    sparse_grad_elements=10.0)},
            outputs={"out": TensorSpec(axes=("b",))})
        vol = op.inputs["w"].grad_sync_volume(op, np.array([[1, 4]]))
        assert vol.tolist() == [2.5]


class TestAliases:
    def make_alias_op(self) -> OpSpec:
        return OpSpec(
            name="a", kind="t", dims=(Dim("h", 10),),
            inputs={"in": TensorSpec(axes=("hi",)),
                    "fixed": TensorSpec(axes=("f",))},
            outputs={"out": TensorSpec(axes=("h",))},
            aliases={"hi": ("h", 21), "f": (None, 7)})

    def test_alias_follows_primary_split(self):
        op = self.make_alias_op()
        splits = op.inputs["in"].splits(op, np.array([[2]]))
        assert splits.tolist() == [[2]]
        assert op.inputs["in"].shard_volume(op, np.array([[2]])).tolist() == [11.0]

    def test_fixed_alias_never_splits(self):
        op = self.make_alias_op()
        splits = op.inputs["fixed"].splits(op, np.array([[5]]))
        assert splits.tolist() == [[1]]

    def test_replication_resolves_aliases(self):
        op = self.make_alias_op()
        # "in" covers h through its alias -> no replication.
        assert op.inputs["in"].replication(op, np.array([[2]])).tolist() == [1]
        # "fixed" covers nothing -> replicated across h splits.
        assert op.inputs["fixed"].replication(op, np.array([[2]])).tolist() == [2]


class TestValidation:
    def test_unknown_axis(self):
        with pytest.raises(GraphError, match="unknown axis"):
            OpSpec(name="x", kind="t", dims=(Dim("a", 2),),
                   outputs={"out": TensorSpec(axes=("zzz",))})

    def test_repeated_axis(self):
        with pytest.raises(GraphError, match="repeats"):
            OpSpec(name="x", kind="t", dims=(Dim("a", 2),),
                   outputs={"out": TensorSpec(axes=("a", "a"))})

    def test_nonpositive_scale(self):
        with pytest.raises(GraphError, match="scale"):
            OpSpec(name="x", kind="t", dims=(Dim("a", 2),),
                   outputs={"out": TensorSpec(axes=("a",), scale=0.0)})
