"""Tests for the library exception hierarchy."""

import pytest

from repro.core.exceptions import (
    ConfigError,
    FaultPlanError,
    GraphError,
    PaseError,
    SearchResourceError,
    SimulationError,
    StrategyError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        GraphError, ConfigError, StrategyError, SearchResourceError,
        SimulationError, FaultPlanError,
    ])
    def test_all_derive_from_pase_error(self, exc):
        assert issubclass(exc, PaseError)
        assert issubclass(exc, Exception)

    def test_fault_plan_error_is_a_simulation_error(self):
        """`except SimulationError` around a simulation must also catch
        bad fault plans fed into it."""
        assert issubclass(FaultPlanError, SimulationError)
        with pytest.raises(SimulationError):
            raise FaultPlanError("bad plan")

    def test_siblings_stay_distinct(self):
        assert not issubclass(SearchResourceError, SimulationError)
        assert not issubclass(SimulationError, SearchResourceError)

    def test_base_catchall(self):
        for exc in (GraphError("g"), SearchResourceError("s"),
                    FaultPlanError("f")):
            with pytest.raises(PaseError):
                raise exc


class TestSearchResourceError:
    def test_plain_message_without_bytes(self):
        err = SearchResourceError("over budget")
        assert str(err) == "over budget"
        assert err.requested_bytes is None and err.budget_bytes is None

    def test_renders_both_byte_counts(self):
        err = SearchResourceError("over budget", requested_bytes=2_000_000,
                                  budget_bytes=1_000_000)
        text = str(err)
        assert "requested_bytes=2,000,000" in text
        assert "budget_bytes=1,000,000" in text
        assert text.startswith("over budget")

    def test_renders_partial_bytes_with_placeholder(self):
        err = SearchResourceError("oom", requested_bytes=512)
        assert "requested_bytes=512" in str(err)
        assert "budget_bytes=?" in str(err)

    def test_bytes_survive_raise(self):
        with pytest.raises(SearchResourceError) as exc:
            raise SearchResourceError("x", requested_bytes=10, budget_bytes=5)
        assert exc.value.requested_bytes == 10
        assert exc.value.budget_bytes == 5

    def test_search_raise_sites_populate_bytes(self):
        """The real DP search attaches byte counts when it trips the
        budget — the CLI relies on this to render actionable errors."""
        from repro.core.configs import ConfigSpace
        from repro.core.costmodel import CostModel
        from repro.core.dp import find_best_strategy
        from repro.core.machine import GTX1080TI
        from tests.conftest import build_dag

        g = build_dag(4, [], batch=16, width=16)
        space = ConfigSpace.build(g, 8)
        tables = CostModel(GTX1080TI).build_tables(g, space)
        with pytest.raises(SearchResourceError) as exc:
            find_best_strategy(g, space, tables, memory_budget=64)
        assert exc.value.requested_bytes is not None
        assert exc.value.budget_bytes == 64
        assert "budget_bytes=64" in str(exc.value)
