"""Tests for the naive recurrence-(2) DP and brute force."""

import numpy as np
import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.exceptions import SearchResourceError
from repro.core.machine import GTX1080TI
from repro.core.naive import bf_dependent_sets, brute_force_strategy, naive_bf_strategy
from tests.conftest import build_dag


def setup(graph, p=4):
    space = ConfigSpace.build(graph, p, mode="all")
    tables = CostModel(GTX1080TI).build_tables(graph, space)
    return space, tables


class TestBFDependentSets:
    def test_path(self):
        adj = [[1], [0, 2], [1]]
        assert bf_dependent_sets(adj) == [(1,), (2,), ()]

    def test_star(self):
        # vertex 0 adjacent to 1..3
        adj = [[1, 2, 3], [0], [0], [0]]
        dep = bf_dependent_sets(adj)
        assert dep[0] == (1, 2, 3)
        assert dep[-1] == ()

    def test_frontier_shrinks_at_end(self):
        adj = [[1], [0, 2], [1, 3], [2]]
        dep = bf_dependent_sets(adj)
        assert all(all(j > i for j in d) for i, d in enumerate(dep))


class TestNaiveDP:
    def test_custom_order(self, diamond):
        space, tables = setup(diamond)
        ref = brute_force_strategy(diamond, space, tables).cost
        for order in [("n0", "n1", "n2", "n3"), ("n3", "n2", "n1", "n0")]:
            res = naive_bf_strategy(diamond, space, tables, order=order)
            assert res.cost == pytest.approx(ref)

    def test_oom_budget(self, diamond):
        space, tables = setup(diamond)
        with pytest.raises(SearchResourceError):
            naive_bf_strategy(diamond, space, tables, memory_budget=100)

    def test_method_label(self, chain3):
        space, tables = setup(chain3)
        assert naive_bf_strategy(chain3, space, tables).method == "naive-bf"

    def test_blows_up_on_branchy_graph_with_small_budget(self):
        """The Table I OOM mechanism: BF ordering's dependent sets on a
        branchy graph exceed a budget the efficient ordering fits in."""
        from repro.core.dp import find_best_strategy
        g = build_dag(10, [(0, 3), (0, 5), (0, 7), (0, 9), (2, 9), (4, 9)])
        space, tables = setup(g, p=4)
        budget = 1 << 16
        ours = find_best_strategy(g, space, tables, memory_budget=budget)
        with pytest.raises(SearchResourceError):
            naive_bf_strategy(g, space, tables, memory_budget=budget)
        assert ours.cost > 0


class TestBruteForce:
    def test_cell_limit(self, diamond):
        space, tables = setup(diamond)
        with pytest.raises(SearchResourceError):
            brute_force_strategy(diamond, space, tables, max_cells=10)

    def test_strategy_achieves_cost(self, diamond):
        space, tables = setup(diamond)
        res = brute_force_strategy(diamond, space, tables)
        assert res.strategy.cost(tables) == pytest.approx(res.cost)

    def test_exhaustive_on_pair(self):
        g = build_dag(2, [], param_mask=0b11)
        space, tables = setup(g)
        res = brute_force_strategy(g, space, tables)
        # Hand enumeration.
        best = min(
            tables.strategy_cost({"n0": i, "n1": j})
            for i in range(space.size("n0"))
            for j in range(space.size("n1")))
        assert res.cost == pytest.approx(best)
