"""Shared-memory data plane: arena lifecycle and mmap'd npz reads.

The arena's contract is *no leaked segments, ever*: unlinked on a clean
build, on a worker dying mid-write, and on the retry-then-serial
degradation path.  The mmap'd cache reads must be read-only views that
are bit-identical to an eager ``np.load``.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import costmodel
from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel, _parse_jobs
from repro.core.machine import GTX1080TI
from repro.core.shm import ShmArena, open_npz_mmap, plan_nbytes
from tests.conftest import build_dag

IS_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"


def _die_mid_write(name):
    # Module-level so the pool can pickle it by reference.
    os._exit(1)


def make_problem(p: int = 4):
    graph = build_dag(4, [(0, 2), (1, 3)], param_mask=0b1010,
                      reduction_mask=0b0100)
    return graph, ConfigSpace.build(graph, p)


def assert_unlinked(name: str, manifest) -> None:
    with pytest.raises(FileNotFoundError):
        ShmArena.attach(name, manifest)


class TestArenaLifecycle:
    PLAN = {("lc", "a"): ((5,), np.float64),
            ("tx", 0): ((3, 4), np.float64)}

    def test_roundtrip_and_unlink_on_success(self):
        arena = ShmArena.create(self.PLAN)
        name, manifest = arena.name, arena.manifest
        a = np.arange(5, dtype=np.float64)
        b = np.arange(12, dtype=np.float64).reshape(3, 4)

        writer = ShmArena.attach(name, manifest)
        writer.write(("lc", "a"), a)
        writer.write(("tx", 0), b)
        writer.close()

        out_a = arena.adopt(("lc", "a"))
        out_b = arena.adopt(("tx", 0))
        assert np.array_equal(out_a, a)
        assert np.array_equal(out_b, b)
        arena.destroy()
        # Adopted copies survive the unlink; the segment itself is gone.
        assert np.array_equal(out_a, a)
        assert_unlinked(name, manifest)

    def test_destroy_is_idempotent(self):
        arena = ShmArena.create(self.PLAN)
        arena.destroy()
        arena.destroy()  # must not raise

    def test_shape_mismatch_rejected(self):
        arena = ShmArena.create(self.PLAN)
        try:
            with pytest.raises(ValueError):
                arena.write(("lc", "a"), np.zeros((7,)))
        finally:
            arena.destroy()

    def test_plan_nbytes_matches_allocation(self):
        arena = ShmArena.create(self.PLAN)
        try:
            assert arena.nbytes >= plan_nbytes(self.PLAN)
        finally:
            arena.destroy()

    @pytest.mark.skipif(not IS_FORK, reason="fork start method required")
    def test_unlinked_after_child_crash_mid_write(self):
        """A worker dying mid-write must not leak the segment: the
        parent's finally-path destroy() still unlinks it."""
        arena = ShmArena.create(self.PLAN)
        name, manifest = arena.name, arena.manifest

        def crash():
            child = ShmArena.attach(name, manifest)
            child.write(("lc", "a"), np.ones(5))
            os._exit(1)  # dies before the second write

        proc = multiprocessing.get_context("fork").Process(target=crash)
        proc.start()
        proc.join()
        assert proc.exitcode == 1
        arena.destroy()
        assert_unlinked(name, manifest)


@pytest.mark.skipif(not IS_FORK, reason="needs fork start method so the "
                    "monkeypatched task reaches pool workers")
class TestArenaUnlinkOnDegradation:
    def test_pool_retry_serial_fallback_unlinks_every_arena(
            self, monkeypatch):
        """Every retry allocates a fresh arena; all of them must be
        unlinked once the build degrades to serial."""
        monkeypatch.setattr(costmodel, "PARALLEL_RETRY_BACKOFF_SECONDS", 0.0)
        created: list[tuple[str, dict]] = []
        real_create = ShmArena.create.__func__

        def recording_create(cls, plan):
            arena = real_create(cls, plan)
            created.append((arena.name, arena.manifest))
            return arena

        monkeypatch.setattr(ShmArena, "create",
                            classmethod(recording_create))
        monkeypatch.setattr(costmodel, "_node_task", _die_mid_write)
        graph, space = make_problem()
        tables = CostModel(GTX1080TI).build_tables(graph, space,
                                                   jobs="processes:2")
        assert tables.build_stats["degraded"] == 1.0
        assert len(created) == 1 + costmodel.PARALLEL_BUILD_RETRIES
        for name, manifest in created:
            assert_unlinked(name, manifest)

    def test_successful_parallel_build_unlinks(self, monkeypatch):
        created: list[tuple[str, dict]] = []
        real_create = ShmArena.create.__func__

        def recording_create(cls, plan):
            arena = real_create(cls, plan)
            created.append((arena.name, arena.manifest))
            return arena

        monkeypatch.setattr(ShmArena, "create",
                            classmethod(recording_create))
        graph, space = make_problem()
        tables = CostModel(GTX1080TI).build_tables(graph, space,
                                                   jobs="processes:2")
        assert tables.build_stats["degraded"] == 0.0
        assert created, "processes backend never allocated an arena"
        for name, manifest in created:
            assert_unlinked(name, manifest)


class TestNpzMmap:
    def write_npz(self, path):
        rng = np.random.default_rng(7)
        arrays = {"alpha": rng.random((13, 5)),
                  "beta": np.arange(9, dtype=np.float64),
                  "gamma": rng.random((2, 3, 4))}
        np.savez(path, **arrays)
        return arrays

    def test_views_match_eager_load(self, tmp_path):
        path = tmp_path / "tables.npz"
        arrays = self.write_npz(path)
        views = open_npz_mmap(path)
        eager = np.load(path)
        assert set(views) == set(arrays)
        for key, ref in arrays.items():
            assert np.array_equal(views[key], ref)
            assert np.array_equal(views[key], eager[key])

    def test_views_are_read_only(self, tmp_path):
        path = tmp_path / "tables.npz"
        self.write_npz(path)
        views = open_npz_mmap(path)
        for arr in views.values():
            assert not arr.flags.writeable
        with pytest.raises(ValueError):
            views["alpha"][0, 0] = 42.0

    def test_compressed_archive_rejected(self, tmp_path):
        path = tmp_path / "z.npz"
        np.savez_compressed(path, x=np.arange(4.0))
        with pytest.raises(ValueError):
            open_npz_mmap(path)

    def test_views_survive_file_deletion(self, tmp_path):
        path = tmp_path / "tables.npz"
        arrays = self.write_npz(path)
        views = open_npz_mmap(path)
        path.unlink()
        assert np.array_equal(views["alpha"], arrays["alpha"])


class TestJobsParsing:
    @pytest.mark.parametrize("spec,expected", [
        (None, ("serial", 1)),
        ("serial", ("serial", 1)),
        (3, ("auto", 3)),
        ("auto:5", ("auto", 5)),
        ("threads:4", ("threads", 4)),
        ("processes:2", ("processes", 2)),
        ("PROCESSES:2", ("processes", 2)),
    ])
    def test_spellings(self, spec, expected):
        assert _parse_jobs(spec) == expected

    def test_zero_means_all_cores(self):
        mode, n = _parse_jobs(0)
        assert mode == "auto" and n == (os.cpu_count() or 1)
        mode, n = _parse_jobs("threads")
        assert mode == "threads" and n == (os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [
        -1, "turbo", "serial:2", "threads:x", "processes:-3", 2.5, True,
    ])
    def test_rejections(self, bad):
        with pytest.raises(ValueError):
            _parse_jobs(bad)


class TestBackendResolution:
    def model(self):
        return CostModel(GTX1080TI)

    def test_forced_backends_ignore_core_count(self):
        cm = self.model()
        assert cm._resolve_backend("threads:4", 10, 100) == ("threads", 4)
        assert cm._resolve_backend("processes:2", 10, 100) == \
            ("processes", 2)

    def test_forced_backend_capped_by_task_count(self):
        cm = self.model()
        assert cm._resolve_backend("threads:8", 10, 3) == ("threads", 3)
        assert cm._resolve_backend("processes:8", 10, 1) == ("serial", 1)

    def test_auto_small_work_stays_serial(self):
        cm = self.model()
        assert cm._resolve_backend(4, 10, 100) == ("serial", 1)

    def test_auto_picks_threads_then_processes_by_result_bytes(
            self, monkeypatch):
        monkeypatch.setattr(costmodel, "PARALLEL_THRESHOLD_CELLS", 0)
        monkeypatch.setattr(costmodel.os, "cpu_count", lambda: 8)
        cm = self.model()
        small = costmodel.PROCESS_MIN_RESULT_BYTES // 8 - 1
        large = costmodel.PROCESS_MIN_RESULT_BYTES // 8
        assert cm._resolve_backend(4, small, 100) == ("threads", 4)
        assert cm._resolve_backend(4, large, 100) == ("processes", 4)

    def test_auto_single_core_is_serial(self, monkeypatch):
        monkeypatch.setattr(costmodel, "PARALLEL_THRESHOLD_CELLS", 0)
        monkeypatch.setattr(costmodel.os, "cpu_count", lambda: 1)
        cm = self.model()
        assert cm._resolve_backend(4, 10**9, 100) == ("serial", 1)
