"""Unit and property tests for configuration enumeration."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.configs import (
    ConfigSpace,
    batch_split_config,
    enumerate_configs,
    serial_config,
)
from repro.core.exceptions import ConfigError
from repro.core.graph import CompGraph
from tests.conftest import build_dag, make_test_op


class TestEnumerate:
    def test_serial_always_first(self):
        op = make_test_op("o")
        for mode in ("pow2", "divisors", "all"):
            tab = enumerate_configs(op, 4, mode=mode)
            assert tab[0].tolist() == [1, 1]

    def test_product_bound(self):
        op = make_test_op("o", batch=16, width=16)
        for mode in ("pow2", "divisors", "all"):
            tab = enumerate_configs(op, 8, mode=mode)
            assert (np.prod(tab, axis=1) <= 8).all()

    def test_dim_size_cap(self):
        op = make_test_op("o", batch=2, width=16)
        tab = enumerate_configs(op, 8)
        assert tab[:, 0].max() <= 2

    def test_pow2_values(self):
        op = make_test_op("o", batch=16, width=16)
        tab = enumerate_configs(op, 16, mode="pow2")
        vals = set(np.unique(tab))
        assert vals <= {1, 2, 4, 8, 16}

    def test_divisors_mode(self):
        op = make_test_op("o", batch=12, width=12)
        tab = enumerate_configs(op, 6, mode="divisors")
        assert set(np.unique(tab)) <= {1, 2, 3, 6}

    def test_all_mode_includes_nonpow2(self):
        op = make_test_op("o", batch=6, width=6)
        tab = enumerate_configs(op, 6, mode="all")
        assert [3, 1] in tab.tolist()

    def test_unsplittable_dim_pinned(self):
        from repro.ops import Conv2D
        op = Conv2D("c", batch=8, in_channels=4, out_channels=4,
                    in_hw=(8, 8), kernel=3)
        tab = enumerate_configs(op, 8)
        r_idx, s_idx = op.dim_index("r"), op.dim_index("s")
        assert (tab[:, r_idx] == 1).all() and (tab[:, s_idx] == 1).all()

    def test_rows_unique(self):
        op = make_test_op("o", batch=16, width=16)
        tab = enumerate_configs(op, 16)
        assert len({tuple(r) for r in tab.tolist()}) == tab.shape[0]

    def test_mode_nesting(self):
        op = make_test_op("o", batch=8, width=8)
        pow2 = {tuple(r) for r in enumerate_configs(op, 8, mode="pow2").tolist()}
        div = {tuple(r) for r in enumerate_configs(op, 8, mode="divisors").tolist()}
        full = {tuple(r) for r in enumerate_configs(op, 8, mode="all").tolist()}
        assert pow2 <= div <= full  # p = 8 is a power of two

    def test_bad_mode(self):
        with pytest.raises(ConfigError):
            enumerate_configs(make_test_op("o"), 4, mode="fibonacci")

    def test_bad_p(self):
        with pytest.raises(ConfigError):
            enumerate_configs(make_test_op("o"), 0)

    @given(st.integers(1, 64), st.sampled_from(["pow2", "divisors", "all"]))
    def test_enumeration_invariants(self, p, mode):
        op = make_test_op("o", batch=8, width=12)
        tab = enumerate_configs(op, p, mode=mode)
        assert tab.shape[1] == op.rank
        assert (tab >= 1).all()
        assert (np.prod(tab, axis=1) <= p).all()
        assert tab[:, 0].max() <= 8 and tab[:, 1].max() <= 12


class TestHelpers:
    def test_serial_config(self):
        assert serial_config(make_test_op("o")) == (1, 1)

    def test_batch_split(self):
        assert batch_split_config(make_test_op("o", batch=8), 4) == (4, 1)

    def test_batch_split_too_small(self):
        with pytest.raises(ConfigError):
            batch_split_config(make_test_op("o", batch=2), 4)

    def test_batch_split_missing_dim(self):
        op = make_test_op("o")
        with pytest.raises(ConfigError):
            batch_split_config(op, 2, batch_dim="zz")


class TestConfigSpace:
    def make_space(self, p=4) -> tuple[CompGraph, ConfigSpace]:
        g = build_dag(3, [])
        return g, ConfigSpace.build(g, p)

    def test_sizes(self):
        g, space = self.make_space()
        assert space.max_size == max(space.size(n) for n in g.node_names)
        assert space.total_cells() == sum(space.size(n) for n in g.node_names)

    def test_roundtrip_index(self):
        g, space = self.make_space()
        for n in g.node_names:
            for k in range(space.size(n)):
                assert space.index_of(n, space.config(n, k)) == k

    def test_index_of_invalid(self):
        _, space = self.make_space()
        with pytest.raises(ConfigError):
            space.index_of("n0", (3, 3))
