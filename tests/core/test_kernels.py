"""Tests for the pluggable kernel backends (`repro.core.kernels`).

Two families:

* registry semantics — selection precedence (explicit > ``PASE_KERNEL``
  > numpy default), scoped overrides, unknown names, and the graceful
  numba-missing fallback;
* kernel correctness — the numpy implementations against naive numpy
  oracles (including numpy's first-minimum argmin tie-break), plus
  numpy-vs-numba bit-parity when numba is importable.
"""

import logging

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.kernels import (
    dominance_mask,
    last_axis_min_argmin,
    min_plus_fold,
    numba_available,
)

needs_numba = pytest.mark.skipif(not numba_available(),
                                 reason="numba not installed")


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Isolate each test from process-wide backend state."""
    monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
    monkeypatch.setattr(kernels, "_SELECTED", [None])
    yield


class TestBackendRegistry:
    def test_default_is_numpy(self):
        assert kernels.get_backend() == "numpy"

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numpy")
        assert kernels.get_backend() == "numpy"

    def test_explicit_selection_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numba")
        kernels.set_backend("numpy")
        assert kernels.get_backend() == "numpy"

    def test_use_scopes_and_restores(self):
        kernels.set_backend("numpy")
        with kernels.use("auto"):
            assert kernels.get_backend() in ("numpy", "numba")
        assert kernels.get_backend() == "numpy"

    def test_use_none_is_inert(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "numpy")
        with kernels.use(None) as resolved:
            assert resolved == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve_backend("tpu")

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "fortran")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.get_backend()

    def test_available_backends_always_has_numpy(self):
        avail = kernels.available_backends()
        assert "numpy" in avail
        assert set(avail) <= {"numpy", "numba"}

    def test_auto_resolves_to_something_concrete(self):
        assert kernels.resolve_backend("auto") in ("numpy", "numba")

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_numba_missing_falls_back_with_warning(self, monkeypatch, caplog):
        monkeypatch.setattr(kernels, "_WARNED", [False])
        with caplog.at_level(logging.WARNING, logger="repro.core.kernels"):
            assert kernels.set_backend("numba") == "numpy"
            a = np.array([[3.0, 1.0, 2.0]])
            vals, args = last_axis_min_argmin(a)
        assert vals.tolist() == [1.0] and args.tolist() == [1]
        assert any("falling back" in rec.message for rec in caplog.records)
        # ... and the warning fires once, not per kernel call.
        n_warnings = len(caplog.records)
        with caplog.at_level(logging.WARNING, logger="repro.core.kernels"):
            last_axis_min_argmin(a)
        assert len(caplog.records) == n_warnings


class TestLastAxisMinArgmin:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 7, 11))
        vals, args = last_axis_min_argmin(a)
        assert np.array_equal(vals, a.min(-1))
        assert np.array_equal(args, a.argmin(-1))
        assert args.dtype == np.int32

    def test_first_minimum_tie_break(self):
        a = np.array([[2.0, 1.0, 1.0], [0.0, 0.0, 0.0]])
        _, args = last_axis_min_argmin(a)
        assert args.tolist() == [1, 0]

    def test_empty_last_axis_rejected(self):
        with pytest.raises(ValueError, match="empty last axis"):
            last_axis_min_argmin(np.empty((3, 0)))


class TestMinPlusFold:
    @staticmethod
    def _naive(a, bt):
        cube = a[:, None, :] + bt[None, :, :]
        return cube.min(-1), cube.argmin(-1)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 9), st.integers(1, 9),
           st.integers(1, 9))
    def test_matches_naive(self, seed, m, n, k):
        rng = np.random.default_rng(seed)
        # Small integer costs force ties, pinning the argmin order.
        a = rng.integers(0, 4, size=(m, k)).astype(float)
        bt = rng.integers(0, 4, size=(n, k)).astype(float)
        folded, arg = min_plus_fold(a, bt, chunk_cells=10**9)
        nf, na = self._naive(a, bt)
        assert np.array_equal(folded, nf)
        assert np.array_equal(arg, na)

    @pytest.mark.parametrize("chunk", [1, 13, 10**9])
    def test_chunking_invariant(self, chunk):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(17, 6))
        bt = rng.normal(size=(9, 6))
        folded, arg = min_plus_fold(a, bt, chunk_cells=chunk)
        nf, na = self._naive(a, bt)
        assert np.array_equal(folded, nf)
        assert np.array_equal(arg, na)

    def test_k1_fast_path(self):
        a = np.array([[1.0], [2.0]])
        bt = np.array([[10.0], [20.0], [30.0]])
        folded, arg = min_plus_fold(a, bt, chunk_cells=10**9)
        assert np.array_equal(folded, a + bt.T)
        assert not arg.any()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="inner axes"):
            min_plus_fold(np.zeros((2, 3)), np.zeros((2, 4)),
                          chunk_cells=10**9)


class TestDominanceMaskKernel:
    @staticmethod
    def _naive(prof):
        k = prof.shape[0]
        keep = np.ones(k, dtype=bool)
        for j in range(k):
            for i in range(k):
                if i == j:
                    continue
                le = (prof[i] <= prof[j]).all()
                ge = (prof[i] >= prof[j]).all()
                if le and ((not ge) or i < j):
                    keep[j] = False
                    break
        return keep

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 30), st.integers(1, 7),
           st.integers(1, 4))
    def test_matches_naive(self, seed, k, c, levels):
        rng = np.random.default_rng(seed)
        prof = rng.integers(0, levels, size=(k, c)).astype(float)
        assert np.array_equal(
            dominance_mask(prof, chunk_cells=10**9), self._naive(prof))

    @pytest.mark.parametrize("chunk", [1, 5, 10**9])
    def test_tiny_chunk_budget(self, chunk):
        """The pair-verification loop must survive a budget smaller than
        one pair-column gather (span clamps to 1)."""
        rng = np.random.default_rng(11)
        prof = rng.integers(0, 3, size=(25, 9)).astype(float)
        assert np.array_equal(dominance_mask(prof, chunk_cells=chunk),
                              self._naive(prof))

    def test_wide_profile_exceeding_chunk(self):
        """K*C far beyond chunk_cells — the regime the reference kernel
        silently exceeded — still returns the exact mask."""
        rng = np.random.default_rng(13)
        prof = rng.integers(0, 2, size=(64, 200)).astype(float)
        assert np.array_equal(dominance_mask(prof, chunk_cells=512),
                              self._naive(prof))


@needs_numba
class TestNumbaParity:
    """Bit-parity of the compiled kernels against numpy, on tie-dense
    integer data (runs only where numba is importable)."""

    def test_last_axis_parity(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=(40, 17)).astype(float)
        v_np, a_np = last_axis_min_argmin(a, backend="numpy")
        v_nb, a_nb = last_axis_min_argmin(a, backend="numba")
        assert np.array_equal(v_np, v_nb)
        assert np.array_equal(a_np, a_nb)

    def test_min_plus_parity(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, size=(19, 8)).astype(float)
        bt = rng.integers(0, 4, size=(13, 8)).astype(float)
        f_np, g_np = min_plus_fold(a, bt, chunk_cells=64, backend="numpy")
        f_nb, g_nb = min_plus_fold(a, bt, chunk_cells=64, backend="numba")
        assert np.array_equal(f_np, f_nb)
        assert np.array_equal(g_np, g_nb)

    def test_dominance_parity(self):
        rng = np.random.default_rng(2)
        prof = rng.integers(0, 3, size=(50, 6)).astype(float)
        k_np = dominance_mask(prof, chunk_cells=10**9, backend="numpy")
        k_nb = dominance_mask(prof, chunk_cells=10**9, backend="numba")
        assert np.array_equal(k_np, k_nb)
