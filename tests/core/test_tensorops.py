"""Tests for the broadcast/chunked-minimization helpers."""

import numpy as np
import pytest

from repro.core._tensorops import aligned_term, chunked_min_argmin


class TestAlignedTerm:
    def test_identity(self):
        a = np.arange(6.0).reshape(2, 3)
        out = aligned_term(a, (0, 1), (0, 1))
        assert np.array_equal(out, a)

    def test_inserts_singletons(self):
        a = np.arange(3.0)
        out = aligned_term(a, (5,), (2, 5, 9))
        assert out.shape == (1, 3, 1)

    def test_transposes_into_target_order(self):
        a = np.arange(6.0).reshape(2, 3)  # axes (7, 4)
        out = aligned_term(a, (7, 4), (4, 7))
        assert out.shape == (3, 2)
        assert np.array_equal(out, a.T)

    def test_wrong_rank(self):
        with pytest.raises(ValueError, match="axes"):
            aligned_term(np.zeros((2, 2)), (1,), (1, 2))

    def test_axis_not_in_target(self):
        with pytest.raises(ValueError, match="not in target"):
            aligned_term(np.zeros(2), (9,), (1, 2))

    def test_scalar_term_no_axes(self):
        """A 0-d term (no axes) broadcasts as an all-singleton view."""
        a = np.array(7.5)
        out = aligned_term(a, (), (0, 1))
        assert out.shape == (1, 1)
        assert out[0, 0] == 7.5

    def test_scalar_target(self):
        """Empty target axes: a 0-d term stays 0-d."""
        a = np.array(3.0)
        out = aligned_term(a, (), ())
        assert out.shape == ()
        assert float(out) == 3.0

    def test_broadcast_sum_semantics(self):
        rng = np.random.default_rng(0)
        a = rng.random((4,))       # axis 0
        b = rng.random((5,))       # axis 1
        c = rng.random((4, 5))     # axes 0, 1
        total = aligned_term(a, (0,), (0, 1)) + \
            aligned_term(b, (1,), (0, 1)) + c
        assert total.shape == (4, 5)
        assert total[2, 3] == pytest.approx(a[2] + b[3] + c[2, 3])


class TestChunkedMinArgmin:
    def full_reference(self, terms, full_axes, table_shape, kc):
        acc = np.zeros(table_shape + (kc,))
        for arr, axes in terms:
            acc = acc + aligned_term(arr, axes, full_axes)
        return acc.min(-1), acc.argmin(-1)

    def run_both(self, terms, full_axes, cfg_axis, kc, table_shape, chunk):
        got = chunked_min_argmin(terms, full_axes, cfg_axis, kc,
                                 table_shape, chunk)
        ref = self.full_reference(terms, full_axes, table_shape, kc)
        assert np.allclose(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])

    def test_single_term(self):
        rng = np.random.default_rng(1)
        lc = rng.random(7)
        self.run_both([(lc, (3,))], (3,), 3, 7, (), chunk=100)

    def test_matches_unchunked(self):
        rng = np.random.default_rng(2)
        ka, kb, kc = 3, 4, 5
        terms = [
            (rng.random(kc), (9,)),
            (rng.random((kc, ka)), (9, 1)),
            (rng.random((ka, kb)), (1, 2)),
            (rng.random((kb,)), (2,)),
        ]
        self.run_both(terms, (1, 2, 9), 9, kc, (ka, kb), chunk=10**9)

    @pytest.mark.parametrize("chunk", [1, 2, 7, 13])
    def test_chunk_sizes_agree(self, chunk):
        rng = np.random.default_rng(3)
        ka, kc = 4, 6
        terms = [(rng.random(kc), (9,)), (rng.random((ka, kc)), (1, 9))]
        self.run_both(terms, (1, 9), 9, kc, (ka,), chunk=chunk)

    def test_no_terms_zero_cost(self):
        table, arg = chunked_min_argmin([], (0,), 0, 3, (), 100)
        assert table == 0.0 and arg == 0

    def test_cfg_axis_must_be_last(self):
        with pytest.raises(ValueError):
            chunked_min_argmin([], (0, 1), 0, 3, (2,), 100)

    def test_tie_breaks_to_lowest_index(self):
        lc = np.zeros(4)
        table, arg = chunked_min_argmin([(lc, (0,))], (0,), 0, 4, (), 2)
        assert arg == 0

    def test_scalar_target_with_constant_term(self):
        """0-d table (no dependent axes) plus a 0-d constant term."""
        lc = np.array([5.0, 2.0, 9.0])
        const = np.array(1.0)
        table, arg = chunked_min_argmin([(lc, (4,)), (const, ())],
                                        (4,), 4, 3, (), 100)
        assert table.shape == () and arg.shape == ()
        assert float(table) == pytest.approx(3.0)
        assert int(arg) == 1

    def test_single_chunk_equals_multi_chunk(self):
        """chunk >= K (one pass) and chunk forcing K passes must agree
        exactly — values and argmins."""
        rng = np.random.default_rng(4)
        ka, kc = 5, 9
        terms = [(rng.random(kc), (9,)), (rng.random((ka, kc)), (1, 9))]
        one = chunked_min_argmin(terms, (1, 9), 9, kc, (ka,), 10**9)
        many = chunked_min_argmin(terms, (1, 9), 9, kc, (ka,), 1)
        assert np.array_equal(one[0], many[0])
        assert np.array_equal(one[1], many[1])

    def _alloc_per_term_reference(self, terms, full_axes, cfg_axis,
                                  cfg_count, table_shape, chunk_cells):
        """The pre-buffer-reuse implementation (fresh array per term per
        chunk).  The shared-buffer path must match it bit for bit."""
        terms = list(terms)
        table_cells = int(np.prod(table_shape)) if table_shape else 1
        chunk = max(1, min(cfg_count, chunk_cells // max(table_cells, 1)))
        best = np.full(table_shape, np.inf, dtype=np.float64)
        best_arg = np.zeros(table_shape, dtype=np.int32)
        for c0 in range(0, cfg_count, chunk):
            c1 = min(cfg_count, c0 + chunk)
            acc = None
            for arr, axes in terms:
                if cfg_axis in axes:
                    sl = [slice(None)] * arr.ndim
                    sl[axes.index(cfg_axis)] = slice(c0, c1)
                    piece = arr[tuple(sl)]
                else:
                    piece = arr
                view = aligned_term(piece, axes, full_axes)
                acc = view.astype(np.float64) if acc is None else acc + view
            if acc is None:
                acc = np.zeros(table_shape + (c1 - c0,), dtype=np.float64)
            else:
                acc = np.broadcast_to(acc, table_shape + (c1 - c0,))
            cand = acc.min(axis=-1)
            arg = acc.argmin(axis=-1).astype(np.int32) + c0
            better = cand < best
            best = np.where(better, cand, best)
            best_arg = np.where(better, arg, best_arg)
        return best, best_arg

    @pytest.mark.parametrize("chunk", [1, 3, 17, 10**9])
    def test_buffer_reuse_bit_identical_to_per_term_alloc(self, chunk):
        rng = np.random.default_rng(7)
        ka, kb, kc = 4, 3, 11
        terms = [
            (rng.random(kc) * 1e12, (9,)),
            (rng.random((kc, ka)) * 1e9, (9, 1)),
            (rng.random((ka, kb)), (1, 2)),
            (rng.random((kb, kc)) * 1e6, (2, 9)),
        ]
        args = (terms, (1, 2, 9), 9, kc, (ka, kb), chunk)
        got = chunked_min_argmin(*args)
        ref = self._alloc_per_term_reference(*args)
        assert np.array_equal(got[0], ref[0])  # bit-identical, not allclose
        assert np.array_equal(got[1], ref[1])

    def test_term_axes_not_in_target_raises(self):
        """A mislabelled term surfaces aligned_term's error, not a
        silent mis-broadcast."""
        bad = [(np.zeros((2, 3)), (0, 7))]
        with pytest.raises(ValueError, match="not in target"):
            chunked_min_argmin(bad, (0, 1), 1, 3, (2,), 100)

    def test_deadline_exceeded(self):
        import time
        terms = [(np.zeros(8), (0,))]
        with pytest.raises(TimeoutError):
            chunked_min_argmin(terms, (0,), 0, 8, (), 1,
                               deadline=time.perf_counter() - 1.0)
