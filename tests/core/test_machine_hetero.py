"""Tests for the heterogeneous-cluster collapse (paper Section V)."""

import pytest

from repro.core.machine import from_heterogeneous


class TestHeterogeneous:
    def test_weakest_links_used(self):
        m = from_heterogeneous("mix",
                               device_flops=[10e12, 14e12, 11e12],
                               intra_bws=[12e9, 8e9],
                               inter_bws=[10e9, 25e9])
        assert m.peak_flops == 10e12
        assert m.intra_node_bw == 8e9
        assert m.inter_node_bw == 10e9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_heterogeneous("x", [], [1.0], [1.0])

    def test_usable_by_cost_model(self):
        from repro.core.configs import ConfigSpace
        from repro.core.costmodel import CostModel
        from repro.core.dp import find_best_strategy
        from repro.models import mlp
        m = from_heterogeneous("mix", [5e12, 10e12], [6e9], [8e9])
        g = mlp(batch=16, hidden=(64,))
        space = ConfigSpace.build(g, 4)
        tables = CostModel(m).build_tables(g, space)
        res = find_best_strategy(g, space, tables)
        assert res.cost > 0
