"""Tests for Strategy objects and search results."""

import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.exceptions import StrategyError
from repro.core.machine import UNIT_BALANCE
from repro.core.strategy import SearchResult, Strategy
from tests.conftest import build_dag


@pytest.fixture
def graph():
    return build_dag(3, [], param_mask=0b111)


@pytest.fixture
def oracle(graph):
    space = ConfigSpace.build(graph, 4)
    return space, CostModel(UNIT_BALANCE).build_tables(graph, space)


class TestConstruction:
    def test_serial(self, graph):
        s = Strategy.serial(graph)
        assert all(s[n] == (1, 1) for n in graph.node_names)
        assert s.max_devices() == 1

    def test_from_indices_roundtrip(self, graph, oracle):
        space, _ = oracle
        idx = {n: space.size(n) - 1 for n in graph.node_names}
        s = Strategy.from_indices(space, idx)
        assert s.to_indices(space) == idx

    def test_tuples_coerced(self):
        s = Strategy({"a": [2, 1]})
        assert s["a"] == (2, 1)
        assert isinstance(s["a"], tuple)

    def test_missing_node(self):
        with pytest.raises(StrategyError):
            Strategy({})["zzz"]

    def test_degree(self):
        s = Strategy({"a": (2, 3)})
        assert s.degree("a") == 6


class TestValidation:
    def test_valid(self, graph):
        Strategy.serial(graph).validate(graph, 4)

    def test_wrong_arity(self, graph):
        s = Strategy({n: (1,) for n in graph.node_names})
        with pytest.raises(StrategyError, match="arity"):
            s.validate(graph, 4)

    def test_exceeds_p(self, graph):
        s = Strategy({n: (4, 2) for n in graph.node_names})
        with pytest.raises(StrategyError, match="devices"):
            s.validate(graph, 4)

    def test_exceeds_dim(self, graph):
        s = Strategy({n: (1, 16) for n in graph.node_names})
        with pytest.raises(StrategyError, match="exceeds dim"):
            s.validate(graph, 16)

    def test_nonpositive_split(self, graph):
        s = Strategy({n: (0, 1) for n in graph.node_names})
        with pytest.raises(StrategyError, match="< 1"):
            s.validate(graph, 4)

    def test_unsplittable_dim(self):
        from repro.ops import Conv2D
        from repro.core.graph import CompGraph
        g = CompGraph([Conv2D("c", batch=4, in_channels=4, out_channels=4,
                              in_hw=(8, 8), kernel=3)])
        cfg = [1] * 7
        cfg[g.node("c").dim_index("r")] = 3
        with pytest.raises(StrategyError, match="not splittable"):
            Strategy({"c": tuple(cfg)}).validate(g, 8)

    def test_unknown_nodes(self, graph):
        s = Strategy({**{n: (1, 1) for n in graph.node_names}, "zzz": (1,)})
        with pytest.raises(StrategyError, match="unknown"):
            s.validate(graph, 4)


class TestEvaluation:
    def test_cost_and_breakdown_agree(self, graph, oracle):
        space, tables = oracle
        s = Strategy.from_indices(space, {n: 1 for n in graph.node_names})
        assert sum(s.breakdown(tables).values()) == pytest.approx(s.cost(tables))


class TestSerialization:
    def test_json_roundtrip(self, graph):
        s = Strategy({n: (2, 1) for n in graph.node_names})
        assert Strategy.from_json(s.to_json()).assignment == s.assignment

    def test_format_table(self, graph):
        s = Strategy.serial(graph)
        text = s.format_table(graph)
        assert "n0" in text and "bm" in text

    def test_format_only_parallel(self, graph):
        s = Strategy({**{n: (1, 1) for n in graph.node_names}, }).assignment
        s = dict(s)
        s["n1"] = (2, 1)
        text = Strategy(s).format_table(graph, only_parallel=True)
        assert "n1" in text and "n0" not in text


class TestSearchResult:
    def test_repr(self):
        r = SearchResult(Strategy({}), 1.0, 0.5, "x")
        assert "x" in repr(r)
