"""Unit and property tests for the analytic cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel, allreduce_bytes
from repro.core.machine import GTX1080TI, RTX2080TI, UNIT_BALANCE, MachineSpec
from repro.core.tensors import DTYPE_BYTES
from tests.conftest import build_dag, make_test_op
from tests.core.test_tensors import gemm_op


class TestAllreduceBytes:
    def test_single_device_free(self):
        assert allreduce_bytes(1000.0, 1) == 0.0

    def test_ring_formula(self):
        assert allreduce_bytes(100.0, 4) == pytest.approx(2 * 100 * 3 / 4)

    def test_vectorized(self):
        out = allreduce_bytes(np.array([100.0, 100.0]), np.array([1, 2]))
        assert out.tolist() == [0.0, 100.0]

    @given(st.floats(1, 1e9), st.integers(2, 1024))
    def test_bounds(self, v, m):
        b = float(allreduce_bytes(v, m))
        assert v * 0.99 <= b <= 2 * v  # 2v(m-1)/m in [v, 2v) for m >= 2


class TestLayerCost:
    def test_serial_cost_is_flops_plus_update(self):
        op = gemm_op()
        cm = CostModel(UNIT_BALANCE)
        cost = cm.layer_cost(op, np.array([[1, 1, 1]]))
        expect = op.flops + op.param_volume() * CostModel.UPDATE_FLOPS_PER_PARAM
        assert cost.tolist() == [pytest.approx(expect)]

    def test_compute_divides_by_parts(self):
        op = gemm_op(b=8)
        cm = CostModel(UNIT_BALANCE, include_grad_sync=False)
        serial = cm.layer_cost(op, np.array([[1, 1, 1]]))[0]
        split = cm.layer_cost(op, np.array([[8, 1, 1]]))[0]
        assert split < serial

    def test_data_parallel_pays_grad_sync(self):
        op = gemm_op(b=8)
        cm = CostModel(GTX1080TI)
        comm = cm.layer_comm_bytes(op, np.array([[8, 1, 1]]))
        w_bytes = op.inputs["w"].volume(op) * DTYPE_BYTES
        assert comm[0] == pytest.approx(2 * w_bytes * 7 / 8)

    def test_reduction_split_pays_partial_sum_combine(self):
        op = gemm_op(c=8)
        cm = CostModel(GTX1080TI, include_grad_sync=False)
        comm = cm.layer_comm_bytes(op, np.array([[1, 1, 4]]))
        out_bytes = op.outputs["out"].volume(op) * DTYPE_BYTES
        assert comm[0] == pytest.approx(2 * 2 * out_bytes * 3 / 4)

    def test_param_parallel_no_sync(self):
        op = gemm_op()
        cm = CostModel(GTX1080TI)
        comm = cm.layer_comm_bytes(op, np.array([[1, 6, 1]]))
        assert comm[0] == 0.0  # weight fully covered by n-split

    def test_ablation_flags(self):
        op = gemm_op(b=8, c=8)
        cfgs = np.array([[8, 1, 1], [1, 1, 8]])
        base = CostModel(GTX1080TI).layer_comm_bytes(op, cfgs)
        no_sync = CostModel(GTX1080TI, include_grad_sync=False) \
            .layer_comm_bytes(op, cfgs)
        no_red = CostModel(GTX1080TI, include_reduction=False) \
            .layer_comm_bytes(op, cfgs)
        assert no_sync[0] < base[0]
        assert no_red[1] < base[1]


class TestTransferCost:
    def make(self):
        g = build_dag(2, [])
        return g, g.node("n0"), g.node("n1")

    def matrix(self, cu, cv, cm=None):
        g, u, v = self.make()
        cm = cm or CostModel(UNIT_BALANCE)
        return cm.transfer_bytes_matrix(
            u, u.outputs["out"], v, v.inputs["in0"],
            np.array(cu), np.array(cv))

    def test_matched_configs_free(self):
        mat = self.matrix([[2, 2]], [[2, 2]])
        assert mat[0, 0] == 0.0

    def test_serial_to_serial_free(self):
        assert self.matrix([[1, 1]], [[1, 1]])[0, 0] == 0.0

    def test_mismatch_costs(self):
        mat = self.matrix([[4, 1]], [[1, 4]])
        assert mat[0, 0] > 0.0

    def test_direction_symmetry(self):
        """t_x(u,v,φ) == t_x(v,u,φ) — paper footnote 2."""
        g, u, v = self.make()
        cm = CostModel(UNIT_BALANCE)
        cu = np.array([[1, 1], [4, 1], [2, 2], [1, 4]])
        cv = np.array([[1, 1], [2, 1], [1, 2], [4, 1]])
        fwd = cm.transfer_bytes_matrix(u, u.outputs["out"], v,
                                       v.inputs["in0"], cu, cv)
        rev = cm.transfer_bytes_matrix(v, v.inputs["in0"], u,
                                       u.outputs["out"], cv, cu)
        assert np.allclose(fwd, rev.T)

    def test_replication_starvation(self):
        """A consumer replicating beyond the producer's copies pays its
        full need (the bug class found against the simulator)."""
        op_u = gemm_op("u", b=8, n=4, c=4)
        op_v = gemm_op("v", b=8, n=4, c=4)
        cm = CostModel(UNIT_BALANCE)
        # u: b-split 4 -> 4 distinct blocks, no replication.
        # v: b-split 4 and n-split 2 -> input replicated twice.
        mat = cm.transfer_bytes_matrix(
            op_u, op_u.outputs["out"], op_v, op_v.inputs["in"],
            np.array([[4, 1, 1]]), np.array([[4, 2, 1]]))
        need = op_v.inputs["in"].shard_volume(op_v, np.array([[4, 2, 1]]))[0]
        assert mat[0, 0] >= need * DTYPE_BYTES

    def test_scales_with_volume(self):
        small = self.matrix([[4, 1]], [[1, 4]])
        g2 = build_dag(2, [], batch=8, width=12)
        cm = CostModel(UNIT_BALANCE)
        u, v = g2.node("n0"), g2.node("n1")
        big = cm.transfer_bytes_matrix(u, u.outputs["out"], v, v.inputs["in0"],
                                       np.array([[4, 1]]), np.array([[1, 4]]))
        assert big[0, 0] > small[0, 0]


class TestCostTables:
    def setup_tables(self, machine: MachineSpec = GTX1080TI):
        g = build_dag(3, [(0, 2)], param_mask=0b111, reduction_mask=0b010)
        space = ConfigSpace.build(g, 4)
        tables = CostModel(machine).build_tables(g, space)
        return g, space, tables

    def test_shapes(self):
        g, space, tables = self.setup_tables()
        for n in g.node_names:
            assert tables.lc[n].shape == (space.size(n),)
        for (u, v), mat in tables.pair_tx.items():
            assert mat.shape == (space.size(u), space.size(v))

    def test_tx_orientation(self):
        g, space, tables = self.setup_tables()
        a = tables.tx("n0", "n1")
        b = tables.tx("n1", "n0")
        assert np.array_equal(a, b.T)

    def test_strategy_cost_sums_terms(self):
        g, space, tables = self.setup_tables()
        idx = {n: 0 for n in g.node_names}
        expect = sum(float(tables.lc[n][0]) for n in g.node_names)
        expect += sum(float(m[0, 0]) for m in tables.pair_tx.values())
        assert tables.strategy_cost(idx) == pytest.approx(expect)

    def test_strategy_cost_missing_node(self):
        from repro.core.exceptions import StrategyError
        _, _, tables = self.setup_tables()
        with pytest.raises(StrategyError):
            tables.strategy_cost({"n0": 0})

    def test_strategy_cost_extra_node(self):
        """Unknown names are rejected, symmetric with missing ones — a
        silently ignored typo would price the wrong strategy."""
        from repro.core.exceptions import StrategyError
        g, _, tables = self.setup_tables()
        idx = {n: 0 for n in g.node_names}
        idx["phantom"] = 0
        with pytest.raises(StrategyError, match="unknown"):
            tables.strategy_cost(idx)

    def test_multi_edges_summed(self):
        from repro.core.graph import CompGraph, Edge
        g = CompGraph([make_test_op("a"), make_test_op("b", n_in=2)])
        g.add_edge(Edge("a", "out", "b", "in0"))
        g.add_edge(Edge("a", "out", "b", "in1"))
        space = ConfigSpace.build(g, 4)
        tables = CostModel(UNIT_BALANCE).build_tables(g, space)
        single = CostModel(UNIT_BALANCE).edge_bytes_matrix(
            g, g.edges[0], space.configs("a"), space.configs("b"))
        assert np.allclose(tables.tx("a", "b"),
                           2 * single * UNIT_BALANCE.flop_byte_ratio)

    def test_machine_balance_scales_comm(self):
        _, _, t_fast = self.setup_tables(GTX1080TI)
        _, _, t_slow = self.setup_tables(RTX2080TI)
        # Any communicating pair costs more on the low-balance machine
        # relative to its FLOPs.
        mat_fast = next(iter(t_fast.pair_tx.values()))
        mat_slow = next(iter(t_slow.pair_tx.values()))
        nz = mat_fast > 0
        if nz.any():
            ratio = mat_slow[nz] / mat_fast[nz]
            assert (ratio > 1.0).all()

    def test_nbytes_positive(self):
        _, _, tables = self.setup_tables()
        assert tables.nbytes() > 0


class TestParallelBuild:
    def setup_instance(self):
        g = build_dag(4, [(0, 2), (1, 3)], param_mask=0b1010,
                      reduction_mask=0b0100)
        space = ConfigSpace.build(g, 8)
        return g, space, CostModel(GTX1080TI)

    def test_parallel_bit_identical(self, monkeypatch):
        """The pooled build must produce exactly the serial arrays —
        not merely allclose (float op order is preserved)."""
        import repro.core.costmodel as costmodel
        monkeypatch.setattr(costmodel, "PARALLEL_THRESHOLD_CELLS", 0)
        g, space, cm = self.setup_instance()
        serial = cm.build_tables(g, space)
        # Forced spelling: `jobs=2` auto-selects from measured work and
        # core count, so it may legitimately resolve to serial/threads.
        par = cm.build_tables(g, space, jobs="processes:2")
        assert par.build_stats["jobs"] == 2.0
        assert par.backend == "processes"
        assert set(serial.lc) == set(par.lc)
        assert set(serial.pair_tx) == set(par.pair_tx)
        for n in serial.lc:
            assert np.array_equal(serial.lc[n], par.lc[n])
        for k in serial.pair_tx:
            assert np.array_equal(serial.pair_tx[k], par.pair_tx[k])

    def test_threads_bit_identical(self):
        g, space, cm = self.setup_instance()
        serial = cm.build_tables(g, space)
        thr = cm.build_tables(g, space, jobs="threads:2")
        assert thr.build_stats["jobs"] == 2.0
        assert thr.backend == "threads"
        for n in serial.lc:
            assert np.array_equal(serial.lc[n], thr.lc[n])
        for k in serial.pair_tx:
            assert np.array_equal(serial.pair_tx[k], thr.pair_tx[k])

    def test_small_problem_stays_serial(self):
        from repro.core.costmodel import PARALLEL_THRESHOLD_CELLS
        g, space, cm = self.setup_instance()
        assert CostModel.table_work_cells(g, space) < \
            PARALLEL_THRESHOLD_CELLS
        tables = cm.build_tables(g, space, jobs=4)
        assert tables.build_stats["jobs"] == 1.0

    def test_negative_jobs_rejected(self):
        g, space, cm = self.setup_instance()
        with pytest.raises(ValueError):
            cm.build_tables(g, space, jobs=-1)

    def test_jobs_none_is_serial(self):
        g, space, cm = self.setup_instance()
        tables = cm.build_tables(g, space)
        assert tables.build_stats["jobs"] == 1.0
        assert tables.build_stats["cache_hit"] == 0.0
        assert tables.build_stats["build_seconds"] >= 0.0
        assert tables.build_stats["cells"] == \
            float(CostModel.table_work_cells(g, space))


class TestMemoryTables:
    """`build_tables(memory=True)`: the frontier's second objective axis
    rides the same jobs/arena data plane as the cost tables."""

    def setup_instance(self):
        g = build_dag(4, [(0, 2), (1, 3)], param_mask=0b1010,
                      reduction_mask=0b0100)
        space = ConfigSpace.build(g, 8)
        return g, space, CostModel(GTX1080TI)

    def test_scalar_build_has_no_mem(self):
        g, space, cm = self.setup_instance()
        tables = cm.build_tables(g, space)
        assert tables.mem is None

    def test_mem_matches_memory_model(self):
        from repro.analysis.memory import MemoryModel
        g, space, cm = self.setup_instance()
        tables = cm.build_tables(g, space, memory=True)
        assert tables.mem is not None and set(tables.mem) == \
            set(g.node_names)
        mm = MemoryModel()
        for n in g.node_names:
            assert tables.mem[n].shape == (space.size(n),)
            assert tables.mem[n].dtype == np.float64
            assert np.array_equal(
                tables.mem[n], mm.node_bytes(g.node(n), space.configs(n)))

    def test_all_backends_bit_identical(self, monkeypatch):
        import repro.core.costmodel as costmodel
        monkeypatch.setattr(costmodel, "PARALLEL_THRESHOLD_CELLS", 0)
        g, space, cm = self.setup_instance()
        serial = cm.build_tables(g, space, memory=True)
        thr = cm.build_tables(g, space, memory=True, jobs="threads:2")
        par = cm.build_tables(g, space, memory=True, jobs="processes:2")
        for other in (thr, par):
            assert set(other.mem) == set(serial.mem)
            for n in serial.mem:
                assert np.array_equal(serial.mem[n], other.mem[n])
        # The cost tables are unchanged by the memory flag.
        plain = cm.build_tables(g, space)
        for n in plain.lc:
            assert np.array_equal(plain.lc[n], serial.lc[n])

    def test_mem_counts_into_nbytes(self):
        g, space, cm = self.setup_instance()
        plain = cm.build_tables(g, space)
        with_mem = cm.build_tables(g, space, memory=True)
        assert with_mem.nbytes() > plain.nbytes()
