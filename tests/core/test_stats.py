"""The frozen SearchResult.stats key schema."""

from __future__ import annotations

import pytest

from repro.core import STATS_KEYS, STATS_KEY_PREFIXES, validate_stats_keys
from repro.core.strategy import SearchResult, Strategy


def test_every_registered_key_validates():
    validate_stats_keys(STATS_KEYS)  # the whole registry at once


def test_prefixed_keys_validate():
    validate_stats_keys(["table_seconds_build", "reduction_rounds",
                         "frontier_points", "frontier_eps",
                         "frontier_selected_peak_bytes"])
    assert set(STATS_KEY_PREFIXES) == {"table_", "reduction_", "frontier_"}


def test_unknown_key_raises_with_name():
    with pytest.raises(ValueError, match="celsl"):
        validate_stats_keys(["cells", "celsl"])


def test_with_stats_enforces_schema():
    res = SearchResult(strategy=Strategy({}), cost=1.0, elapsed=0.0,
                       method="ours")
    merged = res.with_stats(cells=10, table_seconds_build=0.5)
    assert merged.stats == {"cells": 10, "table_seconds_build": 0.5}
    assert res.stats == {}  # original untouched
    with pytest.raises(ValueError, match="frozen"):
        res.with_stats(cellz=10)


def test_descriptions_are_non_empty():
    assert all(STATS_KEYS.values())
    assert all(STATS_KEY_PREFIXES.values())
