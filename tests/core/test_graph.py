"""Unit tests for the computation-graph container."""

import pytest

from repro.core.exceptions import GraphError
from repro.core.graph import CompGraph, Edge
from tests.conftest import build_dag, make_test_op


class TestConstruction:
    def test_duplicate_node(self):
        g = CompGraph([make_test_op("a")])
        with pytest.raises(GraphError, match="duplicate"):
            g.add_node(make_test_op("a"))

    def test_unknown_endpoint(self):
        g = CompGraph([make_test_op("a")])
        with pytest.raises(GraphError, match="unknown node"):
            g.add_edge(Edge("a", "out", "zzz", "in0"))

    def test_self_loop(self):
        g = CompGraph([make_test_op("a")])
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(Edge("a", "out", "a", "in0"))

    def test_unknown_ports(self):
        g = CompGraph([make_test_op("a"), make_test_op("b")])
        with pytest.raises(GraphError, match="output port"):
            g.add_edge(Edge("a", "nope", "b", "in0"))
        with pytest.raises(GraphError, match="input port"):
            g.add_edge(Edge("a", "out", "b", "nope"))

    def test_param_port_rejected(self):
        g = CompGraph([make_test_op("a"),
                       make_test_op("b", with_param=True)])
        with pytest.raises(GraphError, match="parameter port"):
            g.add_edge(Edge("a", "out", "b", "w"))

    def test_shape_mismatch(self):
        g = CompGraph([make_test_op("a", batch=4),
                       make_test_op("b", batch=8)])
        with pytest.raises(GraphError, match="shape mismatch"):
            g.add_edge(Edge("a", "out", "b", "in0"))


class TestQueries:
    def test_neighbors_undirected(self, diamond):
        assert set(diamond.neighbors("n0")) == {"n1", "n2"}
        assert set(diamond.neighbors("n3")) == {"n1", "n2"}
        assert diamond.degree("n0") == 2

    def test_neighbors_deduplicated(self):
        g = CompGraph([make_test_op("a"), make_test_op("b", n_in=2)])
        g.add_edge(Edge("a", "out", "b", "in0"))
        g.add_edge(Edge("a", "out", "b", "in1"))
        assert g.neighbors("a") == ("b",)
        assert len(g.edges_between("a", "b")) == 2

    def test_len_iter_contains(self, chain3):
        assert len(chain3) == 3
        assert "n0" in chain3 and "zzz" not in chain3
        assert [op.name for op in chain3] == ["n0", "n1", "n2"]

    def test_unknown_node_lookup(self, chain3):
        with pytest.raises(GraphError):
            chain3.node("missing")


class TestStructure:
    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for e in diamond.edges:
            assert pos[e.src] < pos[e.dst]

    def test_cycle_detection(self):
        g = CompGraph([make_test_op("a", n_in=1), make_test_op("b", n_in=1)])
        g.add_edge(Edge("a", "out", "b", "in0"))
        g.add_edge(Edge("b", "out", "a", "in0"))
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()

    def test_weak_connectivity(self, diamond):
        assert diamond.is_weakly_connected()
        g = CompGraph([make_test_op("a"), make_test_op("b")])
        assert not g.is_weakly_connected()
        assert len(g.weakly_connected_components()) == 2

    def test_validate(self, diamond):
        diamond.validate()
        g = CompGraph([make_test_op("a"), make_test_op("b")])
        with pytest.raises(GraphError, match="connected"):
            g.validate()


class TestExport:
    def test_to_networkx(self, diamond):
        nxg = diamond.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 4
        assert nxg.nodes["n0"]["kind"] == "test"

    def test_stats(self, diamond):
        s = diamond.stats()
        assert s["nodes"] == 4 and s["edges"] == 4
        assert s["max_degree"] == 2
        assert s["total_flops"] > 0

    def test_stats_counts_high_degree(self):
        g = build_dag(8, [(0, 2), (0, 3), (0, 4), (0, 5), (0, 6)])
        assert g.stats()["nodes_degree_ge_5"] >= 1
