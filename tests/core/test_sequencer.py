"""Tests for vertex orderings — including the Theorem 2 property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import GraphError
from repro.core.sequencer import (
    SequencedGraph,
    breadth_first_seq,
    connected_set_reference,
    connected_subsets_reference,
    dependent_set_reference,
    generate_seq,
    random_seq,
)
from tests.conftest import build_dag, small_dags


class TestOrderings:
    def test_generate_seq_is_permutation(self, diamond):
        order = generate_seq(diamond)
        assert sorted(order) == sorted(diamond.node_names)

    def test_breadth_first_is_permutation(self, diamond):
        order = breadth_first_seq(diamond)
        assert sorted(order) == sorted(diamond.node_names)

    def test_breadth_first_root(self, chain3):
        assert breadth_first_seq(chain3, root="n2")[0] == "n2"
        with pytest.raises(GraphError):
            breadth_first_seq(chain3, root="zzz")

    def test_random_seq(self, chain3, rng):
        order = random_seq(chain3, rng)
        assert sorted(order) == sorted(chain3.node_names)

    def test_deterministic(self, diamond):
        assert generate_seq(diamond) == generate_seq(diamond)

    def test_empty_graph(self):
        from repro.core.graph import CompGraph
        assert generate_seq(CompGraph()) == ()
        assert breadth_first_seq(CompGraph()) == ()

    def _bfs_list_pop_reference(self, graph, root=None):
        """The original O(n²) ``list.pop(0)`` BFS; the deque version must
        visit in exactly the same order."""
        names = graph.node_names
        if not names:
            return ()
        if root is None:
            root = graph.topological_order()[0]
        order, visited = [], set()
        for start in [root] + [n for n in names if n != root]:
            if start in visited:
                continue
            queue = [start]
            visited.add(start)
            while queue:
                n = queue.pop(0)
                order.append(n)
                for m in graph.neighbors(n):
                    if m not in visited:
                        visited.add(m)
                        queue.append(m)
        return tuple(order)

    def test_breadth_first_order_unchanged(self, diamond):
        assert breadth_first_seq(diamond) == \
            self._bfs_list_pop_reference(diamond)

    def test_breadth_first_order_unchanged_on_benchmarks(self):
        from repro.models import inception_v3, transformer
        for factory in (inception_v3, transformer):
            g = factory()
            assert breadth_first_seq(g) == self._bfs_list_pop_reference(g)

    @settings(max_examples=40, deadline=None)
    @given(small_dags())
    def test_breadth_first_order_unchanged_random(self, graph):
        assert breadth_first_seq(graph) == \
            self._bfs_list_pop_reference(graph)

    def _generate_seq_scan_reference(self, graph):
        """The original O(n²) linear-scan GENERATESEQ; the heap version
        must pick identical vertices, ties included."""
        names = graph.node_names
        dep = {n: set(graph.neighbors(n)) for n in names}
        unsequenced = list(names)
        order = []
        for _ in range(len(names)):
            pick = min(unsequenced, key=lambda n: len(dep[n]))
            unsequenced.remove(pick)
            order.append(pick)
            pick_set = dep[pick]
            for v in pick_set:
                merged = dep[v] | pick_set
                merged.discard(pick)
                merged.discard(v)
                dep[v] = merged
        return tuple(order)

    def test_generate_seq_order_unchanged_on_benchmarks(self):
        from repro.models import BENCHMARKS
        for factory in BENCHMARKS.values():
            g = factory()
            assert generate_seq(g) == self._generate_seq_scan_reference(g)

    @settings(max_examples=60, deadline=None)
    @given(small_dags())
    def test_generate_seq_order_unchanged_random(self, graph):
        assert generate_seq(graph) == \
            self._generate_seq_scan_reference(graph)


class TestSequencedGraph:
    def test_rejects_non_permutation(self, chain3):
        with pytest.raises(GraphError):
            SequencedGraph.build(chain3, ("n0", "n1"))

    def test_path_graph_dependent_sets(self, chain3):
        seq = SequencedGraph.build(chain3, ("n0", "n1", "n2"))
        assert seq.max_dependent_size == 1
        assert seq.dep == ((1,), (2,), ())

    def test_connected_set_includes_self(self, diamond):
        seq = SequencedGraph.build(diamond, generate_seq(diamond))
        for i in range(len(seq)):
            assert i in seq.connected_set(i)

    def test_paper_example_structure(self):
        # Fig. 2-like: vertex 4 (0-based) connected to components {0,1},{2}.
        g = build_dag(6, [(0, 4), (2, 4)])
        # order: n0 n1 n2 n3 n4 n5 (identity); X(4) spans everything <= 4.
        seq = SequencedGraph.build(g, g.node_names)
        comps = seq.connected_subsets(4)
        assert sorted(map(tuple, comps)) == [(0, 1, 2, 3)]

    def test_roots_weakly_connected(self, diamond):
        seq = SequencedGraph.build(diamond, generate_seq(diamond))
        assert seq.roots() == [len(seq) - 1]

    def test_later_neighbors(self, chain3):
        seq = SequencedGraph.build(chain3, ("n0", "n1", "n2"))
        assert seq.later_neighbors(0) == (1,)
        assert seq.later_neighbors(2) == ()


class TestTheorem2:
    """GENERATESEQ's incrementally maintained sets equal the definitional
    D(i) = N(X(i)) ∩ V_>i — for the greedy ordering and arbitrary ones."""

    def check(self, graph, order):
        seq = SequencedGraph.build(graph, order)
        for i in range(len(order)):
            expect = dependent_set_reference(graph, order, i)
            got = {order[j] for j in seq.dep[i]}
            assert got == expect, f"D({i}) mismatch for order {order}"

    def test_diamond_generate_seq(self, diamond):
        self.check(diamond, generate_seq(diamond))

    def test_diamond_breadth_first(self, diamond):
        self.check(diamond, breadth_first_seq(diamond))

    @settings(max_examples=60, deadline=None)
    @given(small_dags(), st.randoms(use_true_random=False))
    def test_random_graphs_random_orders(self, graph, rnd):
        order = list(graph.node_names)
        rnd.shuffle(order)
        self.check(graph, tuple(order))

    @settings(max_examples=60, deadline=None)
    @given(small_dags())
    def test_random_graphs_generate_seq(self, graph):
        self.check(graph, generate_seq(graph))


class TestConnectedSets:
    @settings(max_examples=40, deadline=None)
    @given(small_dags())
    def test_connected_sets_match_reference(self, graph):
        order = generate_seq(graph)
        seq = SequencedGraph.build(graph, order)
        for i in range(len(order)):
            expect = connected_set_reference(graph, order, i)
            got = {order[j] for j in seq.connected_set(i)}
            assert got == expect

    @settings(max_examples=40, deadline=None)
    @given(small_dags())
    def test_connected_subsets_match_reference(self, graph):
        order = generate_seq(graph)
        seq = SequencedGraph.build(graph, order)
        for i in range(len(order)):
            expect = {frozenset(c) for c in
                      connected_subsets_reference(graph, order, i)}
            got = {frozenset(order[j] for j in c)
                   for c in seq.connected_subsets(i)}
            assert got == expect

    @settings(max_examples=40, deadline=None)
    @given(small_dags())
    def test_subsets_partition_connected_set(self, graph):
        """X(i) = union of S(i) plus v_i, pairwise disjoint (Theorem 1
        proof's key fact)."""
        order = generate_seq(graph)
        seq = SequencedGraph.build(graph, order)
        for i in range(len(order)):
            comps = seq.connected_subsets(i)
            union: set[int] = set()
            for c in comps:
                assert union.isdisjoint(c)
                union |= set(c)
            assert union | {i} == set(seq.connected_set(i))


class TestOrderingQuality:
    def test_generateseq_beats_bf_on_branchy_graph(self):
        """On an Inception-like branchy graph GENERATESEQ's max dependent
        set must not exceed breadth-first's."""
        from repro.models import inception_v3
        g = inception_v3()
        gs = SequencedGraph.build(g, generate_seq(g))
        bf = SequencedGraph.build(g, breadth_first_seq(g))
        assert gs.max_dependent_size <= 3
        assert bf.max_dependent_size >= 2 * gs.max_dependent_size
