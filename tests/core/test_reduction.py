"""Tests for the exact search-space reduction (dominance + contraction)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel, CostTables
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.core.naive import brute_force_strategy
from repro.core.reduction import (
    ReducedGraphView,
    dominance_keep_mask,
    dominance_keep_mask_reference,
    reduce_problem,
)
from tests.conftest import build_dag, small_dags


def _tables(graph, p, mode="all"):
    space = ConfigSpace.build(graph, p, mode=mode)
    return space, CostModel(GTX1080TI).build_tables(graph, space)


class TestDominanceKeepMask:
    def test_strictly_dominated_row_dropped(self):
        prof = np.array([[1.0, 1.0], [2.0, 2.0], [1.0, 3.0]])
        keep = dominance_keep_mask(prof)
        assert keep.tolist() == [True, False, False]

    def test_incomparable_rows_all_kept(self):
        prof = np.array([[1.0, 3.0], [3.0, 1.0], [2.0, 2.0]])
        assert dominance_keep_mask(prof).all()

    def test_exact_ties_keep_lowest_index(self):
        """An all-equal class must keep exactly its first row — the
        deterministic tie-break that makes row 0 (serial) survive."""
        prof = np.ones((4, 3))
        assert dominance_keep_mask(prof).tolist() == [True, False, False,
                                                      False]

    def test_tie_class_not_at_zero(self):
        prof = np.array([[0.0, 5.0], [2.0, 2.0], [2.0, 2.0], [9.0, 9.0]])
        keep = dominance_keep_mask(prof)
        assert keep.tolist() == [True, True, False, False]

    def test_single_row_trivial(self):
        assert dominance_keep_mask(np.zeros((1, 4))).tolist() == [True]

    @pytest.mark.parametrize("chunk", [1, 7, 10**9])
    def test_chunking_invariant(self, chunk):
        rng = np.random.default_rng(0)
        prof = rng.integers(0, 3, size=(23, 5)).astype(float)
        assert np.array_equal(dominance_keep_mask(prof, chunk_cells=chunk),
                              dominance_keep_mask(prof))

    def test_every_dropped_row_has_surviving_dominator(self):
        rng = np.random.default_rng(1)
        prof = rng.integers(0, 4, size=(40, 4)).astype(float)
        keep = dominance_keep_mask(prof)
        survivors = np.flatnonzero(keep)
        for j in np.flatnonzero(~keep):
            assert any((prof[i] <= prof[j]).all() for i in survivors
                       if i != j), f"row {j} dropped without a dominator"


class TestDominanceOnTables:
    def test_all_equal_rows_collapse_to_serial(self, chain3):
        """When every configuration costs the same, dominance must keep
        exactly index 0 for every node."""
        space, tables = _tables(chain3, 2)
        flat = CostTables(
            graph=chain3, space=space, machine=tables.machine,
            lc={n: np.zeros_like(a) for n, a in tables.lc.items()},
            pair_tx={k: np.zeros_like(m) for k, m in tables.pair_tx.items()},
            derived=True)
        red = reduce_problem(chain3, space, flat, contraction=False)
        for name in red.survivors:
            assert red.config_maps[name].tolist() == [0]

    def test_dominance_never_grows_the_space(self, diamond):
        space, tables = _tables(diamond, 4)
        red = reduce_problem(diamond, space, tables, contraction=False)
        for name in red.survivors:
            assert red.reduced_space.size(name) <= space.size(name)
            # back-map lands inside the original space
            sel = red.config_maps[name]
            assert (0 <= sel).all() and (sel < space.size(name)).all()


class TestChainContraction:
    def test_chain_contracts_fully(self, chain3):
        space, tables = _tables(chain3, 4)
        red = reduce_problem(chain3, space, tables, dominance=False)
        assert red.survivors == ()
        assert len(red.elims) == 3

    def test_expansion_round_trip_is_optimal(self, chain3):
        """A fully contracted chain must expand to the brute-force optimum
        at identical cost."""
        space, tables = _tables(chain3, 4)
        red = reduce_problem(chain3, space, tables, dominance=False)
        full = red.expand_indices({})
        truth = brute_force_strategy(chain3, space, tables)
        assert math.isclose(tables.strategy_cost(full), truth.cost,
                            rel_tol=1e-9)

    def test_parallel_edges_accumulate(self, diamond):
        """Eliminating n1 and n2 (both on n0—n3) must fold both paths onto
        the same reduced edge, not lose one."""
        space, tables = _tables(diamond, 4)
        red = reduce_problem(diamond, space, tables, dominance=False)
        res = find_best_strategy(diamond, space, tables, reduce="always")
        truth = brute_force_strategy(diamond, space, tables)
        assert math.isclose(res.cost, truth.cost, rel_tol=1e-9)
        assert red.stats["reduction_vertices_removed"] >= 2.0


class TestReducedProblem:
    def test_reduced_tables_marked_derived(self, diamond):
        space, tables = _tables(diamond, 4)
        red = reduce_problem(diamond, space, tables)
        assert red.reduced_tables.derived

    def test_stats_keys_complete(self, diamond):
        space, tables = _tables(diamond, 4)
        red = reduce_problem(diamond, space, tables)
        for key in ("reduction_seconds", "reduction_rounds",
                    "reduction_configs_removed",
                    "reduction_vertices_removed", "reduction_cells_removed",
                    "reduction_cells_before", "reduction_cells_after"):
            assert key in red.stats
        assert red.stats["reduction_cells_after"] <= \
            red.stats["reduction_cells_before"]

    def test_graph_view_protocol(self):
        view = ReducedGraphView(("a", "b"), {"a": ("b",), "b": ("a",)})
        assert len(view) == 2 and "a" in view and "z" not in view
        assert view.neighbors("b") == ("a",)
        assert view.degree("a") == 1


class TestReducedDPExactness:
    @pytest.mark.parametrize("p", [2, 4])
    def test_matches_plain_dp_on_branchy_graph(self, p):
        g = build_dag(8, [(0, 4), (2, 6), (3, 7)], param_mask=0b1010)
        space, tables = _tables(g, p, mode="pow2")
        plain = find_best_strategy(g, space, tables)
        red = find_best_strategy(g, space, tables, reduce="always")
        red.strategy.validate(g, p)
        assert red.strategy.cost(tables) == plain.strategy.cost(tables)
        assert red.method.endswith("+reduce")

    @settings(max_examples=25, deadline=None)
    @given(small_dags(max_nodes=5), st.integers(2, 4))
    def test_reduced_dp_matches_brute_force(self, graph, p):
        """The load-bearing exactness property: on arbitrary small graphs
        with the full ``mode="all"`` space, the reduced DP recovers the
        exhaustive-search optimum exactly."""
        space, tables = _tables(graph, p)
        truth = brute_force_strategy(graph, space, tables)
        red = find_best_strategy(graph, space, tables, reduce="always")
        assert math.isclose(red.cost, truth.cost, rel_tol=1e-9, abs_tol=1e-9)
        red.strategy.validate(graph, p)
        assert math.isclose(red.strategy.cost(tables), truth.cost,
                            rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(small_dags(max_nodes=4), st.integers(2, 3))
    def test_single_rule_variants_also_exact(self, graph, p):
        space, tables = _tables(graph, p)
        truth = brute_force_strategy(graph, space, tables)
        for kwargs in ({"contraction": False}, {"dominance": False}):
            red = reduce_problem(graph, space, tables, **kwargs)
            if red.survivors:
                inner = find_best_strategy(red.reduced_graph,
                                           red.reduced_space,
                                           red.reduced_tables)
                res = red.expand_result(inner)
            else:
                full = red.expand_indices({})
                res_cost = tables.strategy_cost(full)
                assert math.isclose(res_cost, truth.cost, rel_tol=1e-9)
                continue
            assert math.isclose(res.cost, truth.cost, rel_tol=1e-9)


class TestDominanceMaskParity:
    """The kernel-dispatched keep-mask must match the retained reference
    bit for bit — same drops, same tie-breaks, any chunking."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 40), st.integers(1, 8),
           st.integers(1, 5))
    def test_matches_reference_on_random_profiles(self, seed, k, c, levels):
        rng = np.random.default_rng(seed)
        # Few distinct levels -> dense ties and dominations, the regime
        # where tie-break bugs surface.
        prof = rng.integers(0, levels, size=(k, c)).astype(float)
        assert np.array_equal(dominance_keep_mask(prof),
                              dominance_keep_mask_reference(prof))

    @pytest.mark.parametrize("chunk", [1, 7, 10**9])
    def test_chunked_matches_reference(self, chunk):
        rng = np.random.default_rng(7)
        prof = rng.integers(0, 3, size=(60, 6)).astype(float)
        assert np.array_equal(
            dominance_keep_mask(prof, chunk_cells=chunk),
            dominance_keep_mask_reference(prof))


def _assert_reductions_identical(fast, ref):
    """Bit-identity between a vectorized and a reference reduction."""
    assert fast.base_cost == ref.base_cost
    assert fast.survivors == ref.survivors
    assert fast.stats["reduction_rounds"] == ref.stats["reduction_rounds"]
    assert fast.stats["reduction_configs_removed"] == \
        ref.stats["reduction_configs_removed"]
    for name in fast.survivors:
        assert np.array_equal(fast.config_maps[name], ref.config_maps[name])
        assert np.array_equal(fast.reduced_tables.lc[name],
                              ref.reduced_tables.lc[name])
    assert set(fast.reduced_tables.pair_tx) == set(ref.reduced_tables.pair_tx)
    for key in fast.reduced_tables.pair_tx:
        assert np.array_equal(fast.reduced_tables.pair_tx[key],
                              ref.reduced_tables.pair_tx[key])
    assert len(fast.elims) == len(ref.elims)
    for ra, rb in zip(fast.elims, ref.elims):
        assert ra.node == rb.node
        assert ra.deps == rb.deps
        assert np.array_equal(ra.table, rb.table)
        assert np.array_equal(ra.sel, rb.sel)


class TestVectorizedParity:
    """The vectorized fixed point (kernels + dirty-set worklist) must
    reproduce the pre-vectorization reference exactly: same elimination
    order and argmin tables, same surviving selections, same folded
    constant, bit-identical reduced tables."""

    @settings(max_examples=20, deadline=None)
    @given(small_dags(max_nodes=6), st.integers(2, 4))
    def test_random_graphs(self, graph, p):
        space, tables = _tables(graph, p)
        fast = reduce_problem(graph, space, tables, vectorized=True)
        ref = reduce_problem(graph, space, tables, vectorized=False)
        _assert_reductions_identical(fast, ref)

    @settings(max_examples=10, deadline=None)
    @given(small_dags(max_nodes=5), st.integers(2, 3))
    def test_random_graphs_single_rule(self, graph, p):
        space, tables = _tables(graph, p)
        for kwargs in ({"contraction": False}, {"dominance": False}):
            fast = reduce_problem(graph, space, tables, vectorized=True,
                                  **kwargs)
            ref = reduce_problem(graph, space, tables, vectorized=False,
                                 **kwargs)
            _assert_reductions_identical(fast, ref)

    @pytest.mark.parametrize(
        "net", ["alexnet", "inception_v3", "rnnlm", "transformer"])
    def test_bundled_models(self, net):
        from repro.models import BENCHMARKS

        graph = BENCHMARKS[net]()
        space = ConfigSpace.build(graph, 8, mode="pow2")
        tables = CostModel(GTX1080TI).build_tables(graph, space)
        fast = reduce_problem(graph, space, tables, vectorized=True)
        ref = reduce_problem(graph, space, tables, vectorized=False)
        _assert_reductions_identical(fast, ref)
