"""Tests for FINDBESTSTRATEGY — including the Theorem 1 property.

The tensorized DP must return exactly the brute-force optimum (Theorem 1)
for any vertex ordering, with the extracted strategy achieving the
reported cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import dp_table_profile, find_best_strategy
from repro.core.exceptions import SearchResourceError
from repro.core.machine import GTX1080TI, UNIT_BALANCE
from repro.core.naive import brute_force_strategy, naive_bf_strategy
from repro.core.sequencer import SequencedGraph, generate_seq
from tests.conftest import build_dag, small_dags


def setup(graph, p=4, machine=GTX1080TI, mode="all"):
    space = ConfigSpace.build(graph, p, mode=mode)
    tables = CostModel(machine).build_tables(graph, space)
    return space, tables


class TestCorrectness:
    def test_chain_matches_brute_force(self, chain3):
        space, tables = setup(chain3)
        dp = find_best_strategy(chain3, space, tables)
        bf = brute_force_strategy(chain3, space, tables)
        assert dp.cost == pytest.approx(bf.cost)

    def test_diamond_matches_brute_force(self, diamond):
        space, tables = setup(diamond)
        dp = find_best_strategy(diamond, space, tables)
        bf = brute_force_strategy(diamond, space, tables)
        assert dp.cost == pytest.approx(bf.cost)

    def test_extracted_strategy_achieves_cost(self, diamond):
        space, tables = setup(diamond)
        dp = find_best_strategy(diamond, space, tables)
        dp.strategy.validate(diamond, space.p)
        assert dp.strategy.cost(tables) == pytest.approx(dp.cost)

    @settings(max_examples=40, deadline=None)
    @given(small_dags(max_nodes=5), st.sampled_from([2, 3, 4]))
    def test_theorem1_random_graphs(self, graph, p):
        """DP == naive BF DP == brute force on random graphs."""
        space, tables = setup(graph, p=p)
        dp = find_best_strategy(graph, space, tables)
        nv = naive_bf_strategy(graph, space, tables)
        bf = brute_force_strategy(graph, space, tables)
        assert dp.cost == pytest.approx(bf.cost, rel=1e-12)
        assert nv.cost == pytest.approx(bf.cost, rel=1e-12)
        assert dp.strategy.cost(tables) == pytest.approx(dp.cost, rel=1e-12)
        assert nv.strategy.cost(tables) == pytest.approx(nv.cost, rel=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(small_dags(max_nodes=5), st.randoms(use_true_random=False))
    def test_any_ordering_same_optimum(self, graph, rnd):
        """Theorem 1 holds for arbitrary orderings, not just GENERATESEQ."""
        space, tables = setup(graph)
        ref = find_best_strategy(graph, space, tables).cost
        order = list(graph.node_names)
        rnd.shuffle(order)
        alt = find_best_strategy(graph, space, tables, order=tuple(order))
        assert alt.cost == pytest.approx(ref, rel=1e-12)

    def test_chunked_evaluation_matches(self, diamond):
        space, tables = setup(diamond)
        ref = find_best_strategy(diamond, space, tables).cost
        tiny = find_best_strategy(diamond, space, tables, chunk_cells=7)
        assert tiny.cost == pytest.approx(ref)

    def test_forest_supported(self):
        from repro.core.graph import CompGraph
        from tests.conftest import make_test_op
        g = CompGraph([make_test_op("a"), make_test_op("b")])
        space, tables = setup(g)
        dp = find_best_strategy(g, space, tables)
        bf = brute_force_strategy(g, space, tables)
        assert dp.cost == pytest.approx(bf.cost)

    def test_empty_graph(self):
        from repro.core.graph import CompGraph
        g = CompGraph()
        space, tables = setup(g)
        res = find_best_strategy(g, space, tables)
        assert res.cost == 0.0 and len(res.strategy) == 0


class TestResourceBudget:
    def test_budget_exceeded_raises(self, diamond):
        space, tables = setup(diamond)
        with pytest.raises(SearchResourceError) as exc:
            find_best_strategy(diamond, space, tables, memory_budget=64)
        assert exc.value.budget_bytes == 64
        assert exc.value.requested_bytes > 64

    def test_generous_budget_ok(self, diamond):
        space, tables = setup(diamond)
        find_best_strategy(diamond, space, tables, memory_budget=1 << 28)


class TestStats:
    def test_stats_populated(self, diamond):
        space, tables = setup(diamond)
        res = find_best_strategy(diamond, space, tables)
        assert res.stats["cells"] > 0
        assert res.stats["vertices"] == 4
        assert res.stats["k_max"] == space.max_size
        assert res.method == "pase-dp"

    def test_table_profile_matches_m(self, diamond):
        space, _ = setup(diamond)
        seq = SequencedGraph.build(diamond, generate_seq(diamond))
        profile = dp_table_profile(seq, space)
        assert len(profile) == 4
        k = space.max_size
        assert max(profile) <= k ** (seq.max_dependent_size + 1)


class TestPeakBytes:
    """Regression tests for the peak-memory accounting.

    ``needed`` already contains the new table + argmin bytes
    (``table_cells * 12``); an earlier version added ``needed`` on top of
    the post-materialization ``live_bytes`` and so double-charged every
    table.
    """

    def test_single_node_exact(self):
        from repro.core.graph import CompGraph
        from tests.conftest import make_test_op
        g = CompGraph([make_test_op("a")])
        space, tables = setup(g)
        res = find_best_strategy(g, space, tables)
        k = space.size("a")
        # One vertex, empty D(i): 12 bytes of table/argmin plus the
        # K-cell transient cost array.  The double-counting bug reported
        # 12 bytes more.
        assert res.stats["peak_bytes"] == 12 + 8 * k

    @pytest.mark.parametrize("fixture", ["chain3", "diamond"])
    def test_matches_reference_accounting(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        space, tables = setup(graph)
        res = find_best_strategy(graph, space, tables)

        # Independent mirror of the DP's accounting: live tables before
        # vertex i, plus i's transient (table + argmin + chunked cost
        # array), children's tables freed after consumption, argmins
        # kept live.
        from repro.core.dp import DEFAULT_CHUNK_CELLS
        seq = SequencedGraph.build(graph, generate_seq(graph))
        ksize = [space.size(seq.name(i)) for i in range(len(seq))]
        table_nbytes = [0] * len(seq)
        live = 0
        peak = 0
        for i in range(len(seq)):
            cells = 1
            for d in seq.dep[i]:
                cells *= ksize[d]
            needed = cells * 12 + \
                min(cells * ksize[i], DEFAULT_CHUNK_CELLS) * 8
            peak = max(peak, live + needed)
            for comp in seq.connected_subsets(i):
                live -= table_nbytes[max(comp)]
            table_nbytes[i] = cells * 8
            live += cells * 12
        assert res.stats["peak_bytes"] == peak


class TestAgainstBaselines:
    """The DP optimum can never lose to any heuristic strategy."""

    def test_beats_data_parallel_and_serial(self):
        from repro.baselines import data_parallel_strategy
        from repro.core.strategy import Strategy
        g = build_dag(4, [(0, 2), (1, 3)], param_mask=0b1111,
                      reduction_mask=0b0110)
        space, tables = setup(g, p=4)
        best = find_best_strategy(g, space, tables)
        assert best.cost <= data_parallel_strategy(g, 4).cost(tables) + 1e-9
        assert best.cost <= Strategy.serial(g).cost(tables) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(small_dags(max_nodes=5), st.randoms(use_true_random=False))
    def test_beats_random_strategies(self, graph, rnd):
        space, tables = setup(graph)
        best = find_best_strategy(graph, space, tables)
        for _ in range(5):
            idx = {n: rnd.randrange(space.size(n)) for n in graph.node_names}
            assert best.cost <= tables.strategy_cost(idx) + 1e-9


class TestReduceAutoBypass:
    """reduce=True is "auto": the reduction is skipped when the plain DP
    is predicted to be cheaper than reading the tables even once."""

    def test_tiny_problem_bypasses(self, diamond):
        space, tables = setup(diamond)
        plain = find_best_strategy(diamond, space, tables)
        res = find_best_strategy(diamond, space, tables, reduce=True)
        assert res.stats["reduction_bypassed"] == 1.0
        assert "reduction_seconds" not in res.stats
        assert not res.method.endswith("+reduce")
        assert res.cost == plain.cost
        assert res.strategy.assignment == plain.strategy.assignment

    def test_always_never_bypasses(self, diamond):
        space, tables = setup(diamond)
        res = find_best_strategy(diamond, space, tables, reduce="always")
        assert res.stats["reduction_bypassed"] == 0.0
        assert "reduction_seconds" in res.stats
        assert res.method.endswith("+reduce")

    def test_ratio_zero_disables_bypass(self, diamond):
        space, tables = setup(diamond)
        res = find_best_strategy(diamond, space, tables, reduce=True,
                                 reduce_bypass_ratio=0.0)
        assert res.stats["reduction_bypassed"] == 0.0
        assert res.method.endswith("+reduce")

    def test_env_ratio_override(self, diamond, monkeypatch):
        from repro.core.dp import REDUCE_BYPASS_ENV_VAR

        space, tables = setup(diamond)
        monkeypatch.setenv(REDUCE_BYPASS_ENV_VAR, "0")
        forced = find_best_strategy(diamond, space, tables, reduce=True)
        assert forced.stats["reduction_bypassed"] == 0.0
        monkeypatch.setenv(REDUCE_BYPASS_ENV_VAR, "1e30")
        skipped = find_best_strategy(diamond, space, tables, reduce=True)
        assert skipped.stats["reduction_bypassed"] == 1.0
        # The explicit kwarg wins over the env var.
        forced = find_best_strategy(diamond, space, tables, reduce=True,
                                    reduce_bypass_ratio=0.0)
        assert forced.stats["reduction_bypassed"] == 0.0

    def test_bad_env_ratio_raises(self, diamond, monkeypatch):
        from repro.core.dp import REDUCE_BYPASS_ENV_VAR

        space, tables = setup(diamond)
        monkeypatch.setenv(REDUCE_BYPASS_ENV_VAR, "not-a-float")
        with pytest.raises(ValueError, match=REDUCE_BYPASS_ENV_VAR):
            find_best_strategy(diamond, space, tables, reduce=True)

    def test_unknown_reduce_mode_rejected(self, diamond):
        space, tables = setup(diamond)
        with pytest.raises(ValueError, match="reduce"):
            find_best_strategy(diamond, space, tables, reduce="sometimes")

    def test_off_spellings_skip_reduction_entirely(self, diamond):
        space, tables = setup(diamond)
        for off in (False, "off", "never"):
            res = find_best_strategy(diamond, space, tables, reduce=off)
            assert "reduction_bypassed" not in res.stats
            assert not res.method.endswith("+reduce")
