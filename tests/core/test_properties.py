"""Cross-cutting property tests (hypothesis) on cost-model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import ConfigSpace, enumerate_configs
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI, UNIT_BALANCE, MachineSpec
from repro.core.strategy import Strategy
from tests.conftest import build_dag, make_test_op, small_dags


class TestLayerCostProperties:
    @given(st.integers(1, 16))
    def test_nonnegative_everywhere(self, p):
        op = make_test_op("o", batch=8, width=8, with_param=True,
                          reduction=True)
        cm = CostModel(GTX1080TI)
        costs = cm.layer_cost(op, enumerate_configs(op, p, mode="all"))
        assert (costs > 0).all()

    @given(st.integers(2, 16))
    def test_serial_config_has_no_comm(self, p):
        op = make_test_op("o", batch=8, width=8, with_param=True,
                          reduction=True)
        cm = CostModel(GTX1080TI)
        comm = cm.layer_comm_bytes(op, np.array([[1, 1, 1]]))
        assert comm[0] == 0.0

    @given(st.floats(1e9, 1e15), st.floats(1e8, 1e12))
    def test_balance_scales_comm_linearly(self, flops, bw):
        op = make_test_op("o", batch=8, width=8, with_param=True)
        m = MachineSpec("m", peak_flops=flops, intra_node_bw=bw,
                        inter_node_bw=bw)
        cfg = np.array([[8, 1]])
        comm_flop = CostModel(m).layer_cost(op, cfg)[0] - \
            CostModel(m, include_grad_sync=False).layer_cost(op, cfg)[0]
        expect = CostModel(UNIT_BALANCE).layer_comm_bytes(op, cfg)[0] \
            * m.flop_byte_ratio
        assert comm_flop == pytest.approx(expect, rel=1e-9)


class TestTransferProperties:
    @settings(max_examples=30, deadline=None)
    @given(small_dags(max_nodes=3), st.integers(2, 6))
    def test_tx_nonnegative_and_serial_free(self, graph, p):
        space = ConfigSpace.build(graph, p, mode="all")
        tables = CostModel(GTX1080TI).build_tables(graph, space)
        for (u, v), mat in tables.pair_tx.items():
            assert (mat >= 0).all()
            # serial producer and consumer co-locate -> no transfer
            assert mat[0, 0] == 0.0

    @settings(max_examples=30, deadline=None)
    @given(small_dags(max_nodes=3), st.integers(2, 6))
    def test_tx_zero_for_matching_tensor_splits(self, graph, p):
        """Configurations inducing identical splits of the flowing tensor
        transfer nothing (as long as neither side over-replicates)."""
        cm = CostModel(GTX1080TI)
        for e in graph.edges:
            src, dst = graph.node(e.src), graph.node(e.dst)
            out_spec = src.outputs[e.src_port]
            in_spec = dst.inputs[e.dst_port]
            cu = enumerate_configs(src, p, mode="all")
            cv = enumerate_configs(dst, p, mode="all")
            mat = cm.transfer_bytes_matrix(src, out_spec, dst, in_spec,
                                           cu, cv)
            su = out_spec.splits(src, cu)
            sv = in_spec.splits(dst, cv)
            rep_u = np.prod(cu, axis=1) // np.maximum(np.prod(su, axis=1), 1)
            rep_v = np.prod(cv, axis=1) // np.maximum(np.prod(sv, axis=1), 1)
            for i in range(cu.shape[0]):
                for j in range(cv.shape[0]):
                    if (su[i] == sv[j]).all() and rep_u[i] == rep_v[j]:
                        assert mat[i, j] == 0.0


class TestSearchProperties:
    @settings(max_examples=25, deadline=None)
    @given(small_dags(max_nodes=5), st.integers(2, 4),
           st.randoms(use_true_random=False))
    def test_optimum_is_global_lower_bound(self, graph, p, rnd):
        """No sampled strategy (valid per the space) undercuts the DP."""
        space = ConfigSpace.build(graph, p, mode="all")
        tables = CostModel(GTX1080TI).build_tables(graph, space)
        best = find_best_strategy(graph, space, tables)
        for _ in range(10):
            idx = {n: rnd.randrange(space.size(n)) for n in graph.node_names}
            assert tables.strategy_cost(idx) >= best.cost - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(small_dags(max_nodes=4), st.integers(2, 4))
    def test_richer_space_never_hurts(self, graph, p):
        """pow2 ⊆ all (for pow2 p) implies optimum(all) <= optimum(pow2)."""
        cm = CostModel(GTX1080TI)
        costs = {}
        for mode in ("pow2", "all"):
            space = ConfigSpace.build(graph, p, mode=mode)
            tables = cm.build_tables(graph, space)
            costs[mode] = find_best_strategy(graph, space, tables).cost
        assert costs["all"] <= costs["pow2"] + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(small_dags(max_nodes=4))
    def test_more_devices_never_hurt(self, graph):
        """C(v) grows monotonically with p, so the optimum can only
        improve."""
        cm = CostModel(GTX1080TI)
        prev = np.inf
        for p in (1, 2, 4):
            space = ConfigSpace.build(graph, p)
            tables = cm.build_tables(graph, space)
            cost = find_best_strategy(graph, space, tables).cost
            assert cost <= prev + 1e-9
            prev = cost


class TestStrategyCostDecomposition:
    @settings(max_examples=20, deadline=None)
    @given(small_dags(max_nodes=4), st.randoms(use_true_random=False))
    def test_breakdown_sums_to_cost(self, graph, rnd):
        space = ConfigSpace.build(graph, 4)
        tables = CostModel(GTX1080TI).build_tables(graph, space)
        idx = {n: rnd.randrange(space.size(n)) for n in graph.node_names}
        strat = Strategy.from_indices(space, idx)
        assert sum(strat.breakdown(tables).values()) == \
            pytest.approx(strat.cost(tables))
