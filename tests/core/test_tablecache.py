"""Tests for the content-addressed on-disk cost-table cache."""

import json

import numpy as np
import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.machine import GTX1080TI, RTX2080TI, UNIT_BALANCE
from repro.core.tablecache import TableCache, table_digest
from tests.conftest import build_dag


def setup_instance(p: int = 4, machine=GTX1080TI, **model_kw):
    g = build_dag(3, [(0, 2)], param_mask=0b101, reduction_mask=0b010)
    space = ConfigSpace.build(g, p)
    cm = CostModel(machine, **model_kw)
    return g, space, cm


def tables_equal(a, b) -> bool:
    return (set(a.lc) == set(b.lc)
            and set(a.pair_tx) == set(b.pair_tx)
            and all(np.array_equal(a.lc[n], b.lc[n]) for n in a.lc)
            and all(np.array_equal(a.pair_tx[k], b.pair_tx[k])
                    for k in a.pair_tx))


class TestDigest:
    def test_stable_across_rebuilds(self):
        g1, s1, m1 = setup_instance()
        g2, s2, m2 = setup_instance()
        assert table_digest(g1, s1, m1) == table_digest(g2, s2, m2)

    def test_sensitive_to_p(self):
        g, s4, cm = setup_instance(p=4)
        _, s8, _ = setup_instance(p=8)
        assert table_digest(g, s4, cm) != table_digest(g, s8, cm)

    def test_sensitive_to_mode(self):
        g, _, cm = setup_instance()
        pow2 = ConfigSpace.build(g, 4, mode="pow2")
        divs = ConfigSpace.build(g, 4, mode="divisors")
        assert table_digest(g, pow2, cm) != table_digest(g, divs, cm)

    def test_sensitive_to_machine(self):
        g, s, cm1 = setup_instance(machine=GTX1080TI)
        _, _, cm2 = setup_instance(machine=RTX2080TI)
        assert table_digest(g, s, cm1) != table_digest(g, s, cm2)

    def test_sensitive_to_ablation_flags(self):
        g, s, base = setup_instance()
        _, _, ablated = setup_instance(include_grad_sync=False)
        assert table_digest(g, s, base) != table_digest(g, s, ablated)

    def test_sensitive_to_graph_shape(self):
        _, s, cm = setup_instance()
        small = build_dag(3, [(0, 2)], param_mask=0b101,
                          reduction_mask=0b010)
        big = build_dag(3, [(0, 2)], batch=8, param_mask=0b101,
                        reduction_mask=0b010)
        s_small = ConfigSpace.build(small, 4)
        s_big = ConfigSpace.build(big, 4)
        assert table_digest(small, s_small, cm) != \
            table_digest(big, s_big, cm)

    def test_sensitive_to_pruned_space(self):
        """Slicing a node's config table changes the digest even though
        (p, mode) are unchanged."""
        g, space, cm = setup_instance()
        pruned_tabs = dict(space.tables)
        name = next(iter(pruned_tabs))
        pruned_tabs[name] = pruned_tabs[name][:1]
        pruned = ConfigSpace(p=space.p, mode=space.mode, tables=pruned_tabs)
        assert table_digest(g, space, cm) != table_digest(g, pruned, cm)


class TestStoreLoad:
    def test_roundtrip(self, tmp_path):
        g, space, cm = setup_instance()
        tables = cm.build_tables(g, space)
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm)
        path = cache.store(digest, tables)
        assert path is not None and path.is_file()
        loaded = cache.load(digest, g, space, cm.machine)
        assert loaded is not None
        assert tables_equal(tables, loaded)
        assert loaded.derived is False

    def test_miss_returns_none(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        assert cache.load("0" * 64, g, space, cm.machine) is None

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm)
        cache.store(digest, cm.build_tables(g, space))
        path = cache.path_for(digest)
        path.write_bytes(b"not an npz archive")
        assert cache.load(digest, g, space, cm.machine) is None
        assert not path.exists()

    def test_shape_mismatch_is_miss(self, tmp_path):
        """An entry whose arrays don't match the live space is dropped
        (defense in depth — the digest should prevent this)."""
        g, space, cm = setup_instance(p=4)
        _, space8, _ = setup_instance(p=8)
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm)
        cache.store(digest, cm.build_tables(g, space))
        assert cache.load(digest, g, space8, cm.machine) is None
        assert not cache.path_for(digest).exists()

    def test_derived_tables_refused(self, tmp_path):
        g, space, cm = setup_instance()
        tables = cm.build_tables(g, space)
        from dataclasses import replace
        cache = TableCache(tmp_path)
        assert cache.store("d" * 64, replace(tables, derived=True)) is None
        assert list(cache.entries()) == []

    def test_coarsened_tables_never_stored(self, tmp_path):
        """The resilience ladder's sliced tables must not poison the
        cache: they are flagged derived and refused."""
        from repro.resilience import coarsen_config_space
        g, space, cm = setup_instance()
        tables = cm.build_tables(g, space)
        _, coarse = coarsen_config_space(space, tables, factor=2)
        assert coarse.derived is True
        cache = TableCache(tmp_path)
        assert cache.store(table_digest(g, space, cm), coarse) is None


class TestMemoryEntries:
    """Memory-covering digests and the ``mem_*`` payload round-trip."""

    def test_memory_flag_changes_digest(self):
        g, space, cm = setup_instance()
        assert table_digest(g, space, cm) != \
            table_digest(g, space, cm, memory=True)

    def test_scalar_digest_unchanged_by_flag_default(self):
        g, space, cm = setup_instance()
        assert table_digest(g, space, cm) == \
            table_digest(g, space, cm, memory=False)

    def test_mem_roundtrip(self, tmp_path):
        g, space, cm = setup_instance()
        tables = cm.build_tables(g, space, memory=True)
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm, memory=True)
        path = cache.store(digest, tables)
        assert path is not None
        loaded = cache.load(digest, g, space, cm.machine)
        assert loaded is not None and loaded.mem is not None
        assert tables_equal(tables, loaded)
        assert set(loaded.mem) == set(tables.mem)
        for n in tables.mem:
            assert np.array_equal(tables.mem[n], loaded.mem[n])

    def test_scalar_entry_loads_without_mem(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm)
        cache.store(digest, cm.build_tables(g, space))
        loaded = cache.load(digest, g, space, cm.machine)
        assert loaded is not None and loaded.mem is None

    def test_mem_manifest_and_checksum(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm, memory=True)
        path = cache.store(digest, cm.build_tables(g, space, memory=True))
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(str(data["manifest"]))
            assert set(manifest["mem_nodes"]) == set(g.node_names)
            assert all(f"mem_{i}" in data.files
                       for i in range(len(manifest["mem_nodes"])))

    def test_tampered_mem_payload_quarantined(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm, memory=True)
        path = cache.store(digest, cm.build_tables(g, space, memory=True))
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["mem_0"] = arrays["mem_0"] + 1.0
        np.savez(path, **arrays)
        assert cache.load(digest, g, space, cm.machine) is None
        assert cache.quarantined == 1

    def test_build_tables_memory_cache_hit(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        cold = cm.build_tables(g, space, memory=True, cache=cache)
        warm = cm.build_tables(g, space, memory=True, cache=cache)
        assert warm.build_stats["cache_hit"] == 1.0
        assert warm.mem is not None
        for n in cold.mem:
            assert np.array_equal(cold.mem[n], warm.mem[n])
        # A scalar build keys a *different* entry — no false sharing.
        scalar = cm.build_tables(g, space, cache=cache)
        assert scalar.build_stats["cache_hit"] == 0.0
        assert scalar.mem is None


class TestBuildTablesIntegration:
    def test_cold_build_populates(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        tables = cm.build_tables(g, space, cache=cache)
        assert tables.build_stats["cache_hit"] == 0.0
        assert len(list(cache.entries())) == 1

    def test_warm_hit_skips_all_construction(self, tmp_path, monkeypatch):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        cold = cm.build_tables(g, space, cache=cache)

        def boom(*args, **kwargs):
            raise AssertionError("matrix construction ran on a cache hit")

        monkeypatch.setattr(CostModel, "layer_cost", boom)
        monkeypatch.setattr(CostModel, "edge_bytes_matrix", boom)
        warm = cm.build_tables(g, space, cache=cache)
        assert warm.build_stats["cache_hit"] == 1.0
        assert tables_equal(cold, warm)

    def test_hit_flows_into_search_stats(self, tmp_path):
        from repro.core.dp import find_best_strategy
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        cm.build_tables(g, space, cache=cache)
        warm = cm.build_tables(g, space, cache=cache)
        res = find_best_strategy(g, space, warm)
        assert res.stats["table_cache_hit"] == 1.0
        assert res.stats["table_build_seconds"] >= 0.0

    def test_different_machines_get_distinct_entries(self, tmp_path):
        g, space, _ = setup_instance()
        cache = TableCache(tmp_path)
        CostModel(GTX1080TI).build_tables(g, space, cache=cache)
        CostModel(UNIT_BALANCE).build_tables(g, space, cache=cache)
        assert len(list(cache.entries())) == 2


class TestEviction:
    def fill(self, cache, n):
        """Store ``n`` distinct instances; returns their digests in
        insertion (oldest-first) order."""
        import os
        import time
        digests = []
        for i, p in enumerate([2, 4, 8, 16, 32][:n]):
            g, space, cm = setup_instance(p=p)
            digest = table_digest(g, space, cm)
            cache.store(digest, cm.build_tables(g, space))
            # Distinct mtimes so LRU order is well-defined on coarse
            # filesystem timestamps.
            os.utime(cache.path_for(digest),
                     (time.time() + i, time.time() + i))
            digests.append(digest)
        return digests

    def test_oldest_evicted_first(self, tmp_path):
        cache = TableCache(tmp_path)
        digests = self.fill(cache, 3)
        one_entry = cache.path_for(digests[0]).stat().st_size
        cache.max_bytes = int(one_entry * 1.5)
        cache.evict()
        remaining = {p.stem for p in cache.entries()}
        assert digests[0] not in remaining  # oldest gone
        assert cache.total_bytes() <= cache.max_bytes

    def test_store_respects_cap_and_keeps_newest(self, tmp_path):
        g, space, cm = setup_instance(p=4)
        probe = TableCache(tmp_path / "probe")
        digest = table_digest(g, space, cm)
        probe.store(digest, cm.build_tables(g, space))
        size = probe.path_for(digest).stat().st_size

        cache = TableCache(tmp_path / "real", max_bytes=int(size * 1.5))
        self.fill(cache, 3)
        stems = {p.stem for p in cache.entries()}
        assert len(stems) >= 1
        assert cache.total_bytes() <= cache.max_bytes

    def test_load_touches_entry(self, tmp_path):
        import os
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm)
        cache.store(digest, cm.build_tables(g, space))
        path = cache.path_for(digest)
        os.utime(path, (1.0, 1.0))  # pretend it is ancient
        before = path.stat().st_mtime
        cache.load(digest, g, space, cm.machine)
        assert path.stat().st_mtime > before

    def test_clear(self, tmp_path):
        cache = TableCache(tmp_path)
        self.fill(cache, 2)
        assert cache.clear() == 2
        assert list(cache.entries()) == []

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TableCache(tmp_path, max_bytes=0)


class TestEnvOverrides:
    def test_dir_and_cap_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PASE_TABLE_CACHE_DIR", str(tmp_path / "envdir"))
        monkeypatch.setenv("PASE_TABLE_CACHE_BYTES", "12345")
        cache = TableCache()
        assert cache.root == tmp_path / "envdir"
        assert cache.max_bytes == 12345

    def test_explicit_args_win(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PASE_TABLE_CACHE_DIR", str(tmp_path / "envdir"))
        cache = TableCache(tmp_path / "explicit", max_bytes=99)
        assert cache.root == tmp_path / "explicit"
        assert cache.max_bytes == 99


class TestManifest:
    def test_manifest_contents(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm)
        path = cache.store(digest, cm.build_tables(g, space))
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(str(data["manifest"]))
        assert manifest["digest"] == digest
        assert set(manifest["nodes"]) == set(g.node_names)
        assert len(manifest["pairs"]) == len(
            {(e.src, e.dst) for e in g.edges})

    def test_manifest_carries_payload_checksum(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        path = cache.store(table_digest(g, space, cm),
                           cm.build_tables(g, space))
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(str(data["manifest"]))
        assert len(manifest["payload_checksum"]) == 64


class TestQuarantine:
    def _stored(self, tmp_path):
        g, space, cm = setup_instance()
        cache = TableCache(tmp_path)
        digest = table_digest(g, space, cm)
        cache.store(digest, cm.build_tables(g, space))
        return g, space, cm, cache, digest

    def test_truncated_entry_quarantined_not_crashed(self, tmp_path):
        g, space, cm, cache, digest = self._stored(tmp_path)
        path = cache.path_for(digest)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])  # torn write / bad disk
        assert cache.load(digest, g, space, cm.machine) is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert (cache.corrupt_dir / path.name).is_file()

    def test_bitflip_fails_checksum_and_quarantines(self, tmp_path):
        """A valid npz whose array bytes were altered (stale manifest
        checksum) must be caught by the integrity check, not returned."""
        g, space, cm, cache, digest = self._stored(tmp_path)
        path = cache.path_for(digest)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["lc_0"] = arrays["lc_0"] + 1.0
        np.savez(path, **arrays)
        assert cache.load(digest, g, space, cm.machine) is None
        assert cache.quarantined == 1
        assert (cache.corrupt_dir / path.name).is_file()

    def test_quarantined_entries_invisible_to_listing(self, tmp_path):
        g, space, cm, cache, digest = self._stored(tmp_path)
        cache.path_for(digest).write_bytes(b"garbage")
        cache.load(digest, g, space, cm.machine)
        assert list(cache.entries()) == []
        assert cache.total_bytes() == 0

    def test_build_tables_rebuilds_after_quarantine(self, tmp_path):
        g, space, cm, cache, digest = self._stored(tmp_path)
        cache.path_for(digest).write_bytes(b"garbage")
        reference = cm.build_tables(g, space)
        rebuilt = cm.build_tables(g, space, cache=cache)
        assert rebuilt.build_stats["cache_hit"] == 0.0
        assert cache.quarantined == 1
        assert tables_equal(rebuilt, reference)
        # The rebuild re-populated the cache; next build is a clean hit.
        again = cm.build_tables(g, space, cache=cache)
        assert again.build_stats["cache_hit"] == 1.0
        assert tables_equal(again, reference)


def _hammer_cache(root: str, seed: int, rounds: int) -> None:
    """Child-process body: write dummy entries and evict repeatedly.

    Module-level so multiprocessing can pickle it by reference.  Exits
    non-zero on any exception — the parent asserts on the exit code.
    """
    import os
    import sys

    try:
        cache = TableCache(root, max_bytes=64 * 1024)
        payload = os.urandom(8 * 1024)
        for i in range(rounds):
            digest = f"{seed:02d}{i:04d}" + "e" * 58
            tmp = cache.root / f".w{seed}.tmp"
            cache.root.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            os.replace(tmp, cache.path_for(digest))
            cache.evict()
            cache.total_bytes()
    except BaseException as err:  # pragma: no cover - failure path
        print(f"hammer[{seed}] died: {type(err).__name__}: {err}",
              file=sys.stderr)
        os._exit(1)
    os._exit(0)


class TestConcurrentWriters:
    def test_two_processes_hammering_one_cache(self, tmp_path):
        """Two writers storing and evicting against one directory must
        never crash (stat/unlink races) nor blow past the cap: the
        flock around eviction serializes the scan-and-delete."""
        import multiprocessing

        root = tmp_path / "shared"
        procs = [multiprocessing.Process(
            target=_hammer_cache, args=(str(root), seed, 60))
            for seed in (1, 2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert [p.exitcode for p in procs] == [0, 0]
        cache = TableCache(root, max_bytes=64 * 1024)
        # Post-quiescence the directory respects the cap exactly.
        cache.evict()
        assert cache.total_bytes() <= cache.max_bytes

    def test_lock_file_is_invisible_to_entries(self, tmp_path):
        cache = TableCache(tmp_path / "c")
        with cache._lock():
            pass
        assert list(cache.entries()) == []
        assert (cache.root / ".lock").is_file()
