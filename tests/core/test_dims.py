"""Unit tests for dimension and shard arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dims import Dim, ceil_div, shard_extent, shard_volume
from repro.core.exceptions import ConfigError


class TestDim:
    def test_basic(self):
        d = Dim("b", 128)
        assert d.name == "b" and d.size == 128 and d.splittable

    def test_unsplittable(self):
        assert not Dim("r", 3, splittable=False).splittable

    @pytest.mark.parametrize("size", [0, -1])
    def test_invalid_size(self, size):
        with pytest.raises(ConfigError):
            Dim("x", size)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Dim("b", 4).size = 8  # type: ignore[misc]


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,expect", [(10, 2, 5), (10, 3, 4), (1, 4, 1),
                                            (7, 7, 1), (8, 16, 1)])
    def test_values(self, a, b, expect):
        assert ceil_div(a, b) == expect

    @given(st.integers(1, 10_000), st.integers(1, 100))
    def test_matches_math(self, a, b):
        import math
        assert ceil_div(a, b) == math.ceil(a / b)


class TestShardExtent:
    def test_scalar(self):
        assert shard_extent(10, 3) == 4

    def test_array(self):
        out = shard_extent(np.array([10, 8]), np.array([3, 2]))
        assert out.tolist() == [4, 4]

    @given(st.integers(1, 1000), st.integers(1, 64))
    def test_covers_all_elements(self, size, split):
        ext = int(shard_extent(size, split))
        assert ext * split >= size
        assert ext >= 1


class TestShardVolume:
    def test_exact_division(self):
        assert shard_volume([8, 6], [[2, 3]]).tolist() == [8]

    def test_ceil_rounding(self):
        # 7/2 -> 4, 5/3 -> 2
        assert shard_volume([7, 5], [[2, 3]]).tolist() == [8]

    def test_batch_of_configs(self):
        out = shard_volume([8, 8], [[1, 1], [2, 2], [8, 8]])
        assert out.tolist() == [64, 16, 1]

    def test_broadcast_cross_product(self):
        splits = np.ones((3, 2, 2), dtype=np.int64)
        assert shard_volume([4, 4], splits).shape == (3, 2)

    def test_rank_mismatch_raises(self):
        with pytest.raises(ConfigError):
            shard_volume([4, 4], [[2]])

    def test_nonpositive_split_raises(self):
        with pytest.raises(ConfigError):
            shard_volume([4], [[0]])

    def test_shape_must_be_1d(self):
        with pytest.raises(ConfigError):
            shard_volume([[4]], [[2]])

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=4).flatmap(
        lambda shape: st.tuples(
            st.just(shape),
            st.lists(st.integers(1, 8), min_size=len(shape),
                     max_size=len(shape)))))
    def test_bounds(self, shape_splits):
        shape, splits = shape_splits
        vol = int(shard_volume(shape, [splits])[0])
        total = int(np.prod(shape))
        parts = int(np.prod(splits))
        assert vol >= -(-total // parts)  # at least the even share
        assert vol <= total
