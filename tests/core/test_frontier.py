"""Tests for the cost × memory Pareto-frontier DP (`repro.core.frontier`).

The load-bearing contracts:

* exactness — the DP frontier equals the brute-force non-dominated set
  on random small graphs (the satellite hypothesis property);
* bit-identity — the frontier's min-cost point carries a cost
  bit-identical to the scalar DP optimum (exact paths use ``==``; reduce
  paths re-price through `CostTables.strategy_cost`, a different float
  association, so they get the repo's usual ``isclose(rel_tol=1e-9)``);
* the scalar pipeline is untouched — ``objective="cost"`` returns the
  identical result through the identical code path.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.frontier import (
    Objective,
    brute_force_frontier,
    find_frontier_strategy,
    memory_tables,
    parse_objective,
    pareto_prune,
    strategy_peak_bytes,
)
from repro.core.machine import GTX1080TI
from repro.core.strategy import FrontierPoint
from tests.conftest import build_dag, small_dags


def setup(graph, p=4, machine=GTX1080TI, mode="all"):
    space = ConfigSpace.build(graph, p, mode=mode)
    tables = CostModel(machine).build_tables(graph, space)
    return space, tables


# ---------------------------------------------------------------------------
# Objective parsing
# ---------------------------------------------------------------------------

class TestParseObjective:
    def test_cost(self):
        obj = parse_objective("cost")
        assert obj == Objective("cost")
        assert not obj.is_frontier
        assert obj.canonical == "cost"

    def test_frontier(self):
        obj = parse_objective("frontier")
        assert obj.is_frontier and obj.eps == 0.0
        assert obj.canonical == "frontier"

    def test_frontier_eps(self):
        obj = parse_objective("frontier:eps=0.25")
        assert obj.is_frontier and obj.eps == 0.25
        assert obj.canonical == "frontier:eps=0.25"

    def test_canonical_round_trips(self):
        for text in ("cost", "frontier", "frontier:eps=0.01"):
            assert parse_objective(text).canonical == text
        # Non-canonical spellings normalize.
        assert parse_objective(" frontier ").canonical == "frontier"
        assert parse_objective("frontier:eps=0.500").canonical == \
            "frontier:eps=0.5"

    def test_objective_instance_passes_through(self):
        obj = Objective("frontier", 0.5)
        assert parse_objective(obj) is obj

    @pytest.mark.parametrize("bad", [
        "speed", "frontier:delta=1", "frontier:eps=lots",
        "frontier:eps=-0.5", "frontier:eps=inf", "Frontier", ""])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_objective(bad)

    def test_rejects_non_string(self):
        with pytest.raises(ValueError, match="string"):
            parse_objective(3.0)


# ---------------------------------------------------------------------------
# Grouped Pareto prune vs an O(n^2) oracle
# ---------------------------------------------------------------------------

def oracle_prune(gid, cost, mem):
    """Quadratic reference: j survives unless some i dominates it (or is
    an exact duplicate with a smaller original index)."""
    n = len(cost)
    keep = []
    for j in range(n):
        dominated = False
        for i in range(n):
            if i == j or gid[i] != gid[j]:
                continue
            if cost[i] <= cost[j] and mem[i] <= mem[j]:
                if cost[i] < cost[j] or mem[i] < mem[j] or i < j:
                    dominated = True
                    break
        if not dominated:
            keep.append(j)
    return keep


@st.composite
def prune_inputs(draw):
    """Grouped point sets with deliberate exact ties on both axes."""
    n_groups = draw(st.integers(min_value=1, max_value=4))
    vals = st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 8.0])
    gid, cost, mem = [], [], []
    for g in range(n_groups):
        size = draw(st.integers(min_value=0, max_value=8))
        for _ in range(size):
            gid.append(g)
            cost.append(draw(vals))
            mem.append(draw(vals))
    return (np.array(gid, dtype=np.int64), np.array(cost), np.array(mem))


class TestParetoPrune:
    @settings(max_examples=200, deadline=None)
    @given(prune_inputs())
    def test_matches_oracle(self, inputs):
        gid, cost, mem = inputs
        kept = pareto_prune(gid, cost, mem)
        assert sorted(kept.tolist()) == oracle_prune(gid, cost, mem)

    @settings(max_examples=100, deadline=None)
    @given(prune_inputs())
    def test_output_order_contract(self, inputs):
        """Survivors come back (group asc, cost asc); within a group the
        memory is strictly decreasing and the first point is min-cost."""
        gid, cost, mem = inputs
        kept = pareto_prune(gid, cost, mem)
        kg, kc, km = gid[kept], cost[kept], mem[kept]
        for t in range(1, len(kept)):
            if kg[t] == kg[t - 1]:
                assert kc[t] >= kc[t - 1]
                assert km[t] < km[t - 1]
            else:
                assert kg[t] > kg[t - 1]
        for g in np.unique(gid):
            mask = gid == g
            if mask.any():
                first = kc[kg == g][0]
                assert first == cost[mask].min()

    def test_requires_sorted_groups(self):
        with pytest.raises(ValueError, match="nondecreasing"):
            pareto_prune(np.array([1, 0]), np.array([1.0, 2.0]),
                         np.array([1.0, 2.0]))

    def test_empty(self):
        kept = pareto_prune(np.empty(0, dtype=np.int64), np.empty(0),
                            np.empty(0))
        assert kept.shape == (0,) and kept.dtype == np.int64

    def test_exact_duplicate_keeps_earliest(self):
        gid = np.zeros(3, dtype=np.int64)
        kept = pareto_prune(gid, np.array([1.0, 1.0, 1.0]),
                            np.array([2.0, 2.0, 2.0]))
        assert kept.tolist() == [0]

    @settings(max_examples=100, deadline=None)
    @given(prune_inputs(), st.sampled_from([0.01, 0.1, 0.5, 2.0]))
    def test_eps_coarsening(self, inputs, eps):
        """eps survivors are a subset of the exact frontier, at most one
        per geometric memory bucket, and every group min-cost is exact."""
        gid, cost, mem = inputs
        exact = set(pareto_prune(gid, cost, mem).tolist())
        kept = pareto_prune(gid, cost, mem, eps=eps)
        assert set(kept.tolist()) <= exact
        for g in np.unique(gid):
            mask = gid == g
            gk = kept[gid[kept] == g]
            if mask.any():
                assert cost[gk].min() == cost[mask].min()
                buckets = np.floor(np.log(np.maximum(mem[gk], 1.0))
                                   / math.log1p(eps)).astype(np.int64)
                assert len(np.unique(buckets)) == len(gk)


# ---------------------------------------------------------------------------
# The frontier DP vs brute force (the satellite hypothesis property)
# ---------------------------------------------------------------------------

def assert_frontiers_match(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        # Costs may differ in the last ulp (DP association vs
        # strategy_cost's table-order sum); memory sums are exact.
        assert math.isclose(a.cost, b.cost, rel_tol=1e-9, abs_tol=1e-12)
        assert a.peak_bytes == b.peak_bytes


class TestFrontierExactness:
    @settings(max_examples=25, deadline=None)
    @given(small_dags(max_nodes=5), st.sampled_from([2, 3, 4]))
    def test_matches_brute_force(self, graph, p):
        space, tables = setup(graph, p=p)
        res = find_frontier_strategy(graph, space, tables)
        bf = brute_force_frontier(graph, space, tables)
        assert_frontiers_match(res.frontier, bf)

    @settings(max_examples=25, deadline=None)
    @given(small_dags(max_nodes=5), st.sampled_from([2, 3, 4]))
    def test_min_cost_point_bit_identical_to_scalar_dp(self, graph, p):
        space, tables = setup(graph, p=p)
        scalar = find_best_strategy(graph, space, tables)
        res = find_frontier_strategy(graph, space, tables)
        assert res.frontier[0].cost == scalar.cost
        assert res.cost == scalar.cost
        assert res.strategy.assignment == res.frontier[0].strategy.assignment

    @settings(max_examples=15, deadline=None)
    @given(small_dags(max_nodes=5))
    def test_points_price_correctly(self, graph):
        """Every frontier point's strategy reprices to its recorded
        (cost, peak_bytes) pair."""
        space, tables = setup(graph)
        mem = memory_tables(graph, space)
        res = find_frontier_strategy(graph, space, tables)
        for pt in res.frontier:
            pt.strategy.validate(graph, space.p)
            assert pt.strategy.cost(tables) == \
                pytest.approx(pt.cost, rel=1e-9)
            assert strategy_peak_bytes(graph, space, pt.strategy,
                                       mem_tables=mem) == pt.peak_bytes

    @settings(max_examples=12, deadline=None)
    @given(small_dags(max_nodes=5), st.randoms(use_true_random=False))
    def test_any_ordering_same_frontier(self, graph, rnd):
        space, tables = setup(graph)
        ref = find_frontier_strategy(graph, space, tables)
        order = list(graph.node_names)
        rnd.shuffle(order)
        alt = find_frontier_strategy(graph, space, tables,
                                     order=tuple(order))
        assert_frontiers_match(alt.frontier, ref.frontier)

    def test_chunked_merge_matches(self, diamond):
        space, tables = setup(diamond)
        ref = find_frontier_strategy(diamond, space, tables)
        tiny = find_frontier_strategy(diamond, space, tables, chunk_cells=7)
        assert_frontiers_match(tiny.frontier, ref.frontier)

    def test_frontier_sorted_and_nondominated(self, diamond):
        space, tables = setup(diamond)
        res = find_frontier_strategy(diamond, space, tables)
        pts = res.frontier
        assert len(pts) >= 1
        for a, b in zip(pts, pts[1:]):
            assert a.cost <= b.cost
            assert a.peak_bytes > b.peak_bytes

    def test_empty_graph(self):
        from repro.core.graph import CompGraph
        g = CompGraph()
        space, tables = setup(g)
        res = find_frontier_strategy(g, space, tables)
        assert res.cost == 0.0
        assert len(res.frontier) == 1
        assert res.frontier[0].peak_bytes == 0.0

    def test_rejects_bad_eps(self, diamond):
        space, tables = setup(diamond)
        with pytest.raises(ValueError, match="eps"):
            find_frontier_strategy(diamond, space, tables, eps=-1.0)


class TestEpsCoarsening:
    @settings(max_examples=15, deadline=None)
    @given(small_dags(max_nodes=5), st.sampled_from([0.01, 0.5]))
    def test_subset_with_exact_min_cost(self, graph, eps):
        """Coarsening can only shrink the frontier; the min-cost point
        stays bit-identical to the scalar optimum."""
        space, tables = setup(graph)
        exact = find_frontier_strategy(graph, space, tables)
        coarse = find_frontier_strategy(graph, space, tables, eps=eps)
        assert len(coarse.frontier) <= len(exact.frontier)
        assert coarse.frontier[0].cost == exact.frontier[0].cost
        scalar = find_best_strategy(graph, space, tables)
        assert coarse.cost == scalar.cost
        assert coarse.stats["frontier_eps"] == eps


class TestReduceCompat:
    @settings(max_examples=10, deadline=None)
    @given(small_dags(max_nodes=5))
    def test_reduce_always_matches_plain(self, graph):
        """The memory-aware reduction must not lose frontier points; the
        lifted costs re-price through `strategy_cost`, so isclose."""
        space, tables = setup(graph)
        plain = find_frontier_strategy(graph, space, tables)
        red = find_frontier_strategy(graph, space, tables, reduce="always")
        assert red.method.endswith("+reduce")
        assert "reduction_seconds" in red.stats
        assert len(red.frontier) == len(plain.frontier)
        for a, b in zip(red.frontier, plain.frontier):
            assert math.isclose(a.cost, b.cost, rel_tol=1e-9,
                                abs_tol=1e-12)
            assert a.peak_bytes == b.peak_bytes

    def test_auto_bypass_on_small_problem(self, diamond):
        space, tables = setup(diamond)
        res = find_frontier_strategy(diamond, space, tables, reduce=True)
        assert res.stats.get("reduction_bypassed") == 1.0


class TestStatsAndDispatch:
    def test_stats_populated(self, diamond):
        space, tables = setup(diamond)
        res = find_frontier_strategy(diamond, space, tables)
        assert res.method == "pase-dp+frontier"
        assert res.stats["frontier_points"] == float(len(res.frontier))
        assert res.stats["frontier_max_state_points"] >= 1.0
        assert res.stats["frontier_eps"] == 0.0
        assert res.stats["cells"] > 0

    def test_find_best_strategy_dispatches(self, diamond):
        """`find_best_strategy(objective="frontier")` is the frontier DP;
        `objective="cost"` is the scalar path, bit-identical."""
        space, tables = setup(diamond)
        plain = find_best_strategy(diamond, space, tables)
        scalar = find_best_strategy(diamond, space, tables,
                                    objective="cost")
        assert scalar.cost == plain.cost
        assert scalar.strategy.assignment == plain.strategy.assignment
        assert scalar.frontier == ()
        fr = find_best_strategy(diamond, space, tables,
                                objective="frontier")
        assert fr.method == "pase-dp+frontier"
        assert fr.cost == plain.cost
        assert len(fr.frontier) >= 1
        coarse = find_best_strategy(diamond, space, tables,
                                    objective="frontier:eps=0.5")
        assert coarse.stats["frontier_eps"] == 0.5

    def test_budget_exceeded_raises(self, diamond):
        from repro.core.exceptions import SearchResourceError
        space, tables = setup(diamond)
        with pytest.raises(SearchResourceError) as exc:
            find_frontier_strategy(diamond, space, tables,
                                   memory_budget=64)
        assert exc.value.budget_bytes == 64

    def test_checkpoint_called(self, diamond):
        space, tables = setup(diamond)
        seen = []
        find_frontier_strategy(
            diamond, space, tables,
            checkpoint=lambda **kw: seen.append(kw))
        assert any(kw.get("phase") == "frontier" for kw in seen)


class TestStrategyPeakBytes:
    def test_matches_memory_tables_sum(self, diamond):
        space, tables = setup(diamond)
        res = find_best_strategy(diamond, space, tables)
        mem = memory_tables(diamond, space)
        idx = res.strategy.to_indices(space)
        want = sum(float(mem[n][k]) for n, k in idx.items())
        assert strategy_peak_bytes(diamond, space, res.strategy) == want
        assert strategy_peak_bytes(diamond, space, res.strategy,
                                   mem_tables=mem) == want


class TestBundledModels:
    """Satellite: the frontier min-cost point is bit-identical to the
    scalar DP optimum on all four bundled models at p=8.  The two heavy
    models run eps-coarsened — coarsening only shrinks the frontier and
    its min-cost point is exact by construction, so the bit-identity
    claim is the same one (the exact p=16 frontiers are exercised by
    ``benchmarks/bench_frontier.py``)."""

    @pytest.mark.parametrize("name,eps", [
        ("alexnet", 0.0),
        ("rnnlm", 0.0),
        ("inception_v3", 10.0),
        ("transformer", 10.0),
    ])
    def test_min_cost_bit_identity_p8(self, name, eps):
        from repro.models import BENCHMARKS

        graph = BENCHMARKS[name]()
        space = ConfigSpace.build(graph, 8)
        tables = CostModel(GTX1080TI).build_tables(graph, space)
        scalar = find_best_strategy(graph, space, tables)
        res = find_frontier_strategy(graph, space, tables, eps=eps)
        assert res.frontier[0].cost == scalar.cost
        assert res.cost == scalar.cost
        for a, b in zip(res.frontier, res.frontier[1:]):
            assert a.cost <= b.cost and a.peak_bytes > b.peak_bytes


class TestFrontierPoint:
    def test_frozen_and_ordered_fields(self):
        from repro.core.strategy import Strategy
        pt = FrontierPoint(cost=1.0, peak_bytes=2.0, strategy=Strategy({}))
        with pytest.raises(AttributeError):
            pt.cost = 3.0
