"""Tests for machine profiles."""

import pytest

from repro.core.machine import GTX1080TI, RTX2080TI, UNIT_BALANCE, MachineSpec


class TestMachineSpec:
    def test_flop_byte_ratio(self):
        m = MachineSpec("m", peak_flops=100.0, intra_node_bw=4.0,
                        inter_node_bw=25.0)
        assert m.link_bandwidth == pytest.approx(10.0)  # geometric mean
        assert m.flop_byte_ratio == pytest.approx(10.0)

    def test_unit_balance(self):
        assert UNIT_BALANCE.flop_byte_ratio == 1.0

    def test_nodes_for(self):
        assert GTX1080TI.nodes_for(8) == 1
        assert GTX1080TI.nodes_for(9) == 2
        assert GTX1080TI.nodes_for(64) == 8

    def test_paper_contrast(self):
        """The 2080Ti system has higher peak but much lower balance —
        the Fig. 6b premise."""
        assert RTX2080TI.peak_flops > GTX1080TI.peak_flops
        assert RTX2080TI.flop_byte_ratio > 1.5 * GTX1080TI.flop_byte_ratio
        assert not RTX2080TI.p2p and GTX1080TI.p2p

    @pytest.mark.parametrize("kw", [
        {"peak_flops": 0.0}, {"intra_node_bw": -1.0}, {"devices_per_node": 0},
    ])
    def test_invalid(self, kw):
        base = dict(name="m", peak_flops=1.0, intra_node_bw=1.0,
                    inter_node_bw=1.0)
        base.update(kw)
        with pytest.raises(ValueError):
            MachineSpec(**base)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GTX1080TI.peak_flops = 1.0  # type: ignore[misc]
