"""Tests for the model zoo: every builder yields a valid, searchable graph."""

import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.core.sequencer import SequencedGraph, breadth_first_seq, generate_seq
from repro.models import (
    BENCHMARKS,
    alexnet,
    densenet,
    inception_v3,
    mlp,
    rnnlm,
    transformer,
)

ALL_BUILDERS = {
    "mlp": lambda: mlp(),
    "alexnet": lambda: alexnet(),
    "alexnet_bare": lambda: alexnet(with_aux=False),
    "inception": lambda: inception_v3(),
    "inception_bn": lambda: inception_v3(with_bn=True),
    "rnnlm": lambda: rnnlm(),
    "transformer": lambda: transformer(layers=2),
    "transformer_bare": lambda: transformer(layers=2, residuals=False),
    "densenet": lambda: densenet(block_layers=4),
}


@pytest.mark.parametrize("name", list(ALL_BUILDERS))
def test_builds_and_validates(name):
    g = ALL_BUILDERS[name]()
    g.validate()
    assert len(g) >= 4
    assert g.stats()["total_flops"] > 0


@pytest.mark.parametrize("name", list(ALL_BUILDERS))
def test_searchable_at_small_p(name):
    g = ALL_BUILDERS[name]()
    space = ConfigSpace.build(g, 2)
    tables = CostModel(GTX1080TI).build_tables(g, space)
    res = find_best_strategy(g, space, tables)
    res.strategy.validate(g, 2)
    assert res.cost > 0


def test_benchmark_registry():
    assert set(BENCHMARKS) == {"alexnet", "inception_v3", "rnnlm", "transformer"}
    for fn in BENCHMARKS.values():
        assert callable(fn)


class TestAlexNet:
    def test_path_graph(self):
        g = alexnet()
        assert all(g.degree(n) <= 2 for n in g.node_names)

    def test_layer_plan(self):
        g = alexnet()
        conv1 = g.node("conv1")
        assert conv1.dim_size("h") == 55
        fc1 = g.node("fc1")
        assert fc1.dim_size("c") == 256 * 6 * 6

    def test_batch_paper_default(self):
        assert alexnet().node("conv1").dim_size("b") == 128


class TestInception:
    def test_section_3c_shape(self):
        """Paper: mostly sparse, ~12 high-degree nodes, GENERATESEQ keeps
        dependent sets tiny while BF blows up."""
        g = inception_v3()
        stats = g.stats()
        assert stats["nodes_degree_ge_5"] == 12
        gs = SequencedGraph.build(g, generate_seq(g))
        bf = SequencedGraph.build(g, breadth_first_seq(g))
        assert gs.max_dependent_size <= 3
        assert bf.max_dependent_size >= 8

    def test_module_channel_plan(self):
        g = inception_v3()
        fc = g.node("fc")
        assert fc.dim_size("c") == 2048  # module E output channels

    def test_bn_variant_grows(self):
        assert len(inception_v3(with_bn=True)) > 2 * len(inception_v3())


class TestRNNLM:
    def test_single_lstm_vertex_path_graph(self):
        g = rnnlm()
        assert len(g) == 4
        assert g.node("lstm").rank == 5
        assert all(g.degree(n) <= 2 for n in g.node_names)


class TestTransformer:
    def test_encoder_output_fans_out(self):
        g = transformer(layers=4)
        degrees = {n: g.degree(n) for n in g.node_names}
        hub, deg = max(degrees.items(), key=lambda kv: kv[1])
        assert deg >= 4 + 1  # feeds every decoder cross-attention
        assert "enc3" in hub  # the final encoder sublayer

    def test_layer_scaling(self):
        assert len(transformer(layers=4)) > len(transformer(layers=2))

    def test_requires_divisible_heads(self):
        with pytest.raises(ValueError):
            transformer(model_dim=100, heads=3)


class TestDenseNet:
    def test_dense_under_any_ordering(self):
        """Section V: no ordering helps on uniformly dense graphs."""
        g = densenet(block_layers=6)
        gs = SequencedGraph.build(g, generate_seq(g))
        assert gs.max_dependent_size >= 4

    def test_density_grows_with_depth(self):
        small = densenet(block_layers=3)
        big = densenet(block_layers=7)
        m = lambda g: SequencedGraph.build(g, generate_seq(g)).max_dependent_size
        assert m(big) > m(small)


class TestExtensionModels:
    def test_resnet_structure(self):
        from repro.models import resnet50
        g = resnet50()
        g.validate()
        # Residual adds give two-input joins throughout.
        kinds = {op.kind for op in g}
        assert "ew_add" in kinds and "conv2d" in kinds
        assert g.node("fc").dim_size("c") == 2048

    def test_resnet_orderable(self):
        from repro.core.sequencer import SequencedGraph, generate_seq
        from repro.models import resnet50
        g = resnet50()
        seq = SequencedGraph.build(g, generate_seq(g))
        assert seq.max_dependent_size <= 3

    def test_vgg_path_graph(self):
        from repro.models import vgg16
        g = vgg16()
        g.validate()
        assert all(g.degree(n) <= 2 for n in g.node_names)
        assert g.node("fc1").dim_size("c") == 512 * 7 * 7

    def test_owt_covers_extension_cnns(self):
        from repro.baselines import owt_strategy
        from repro.models import resnet50, vgg16
        for builder in (resnet50, vgg16):
            g = builder()
            owt_strategy(g, 8).validate(g, 8)


class TestTransformerWiring:
    def test_cross_attention_memory_edges(self):
        from repro.models import transformer
        g = transformer(layers=3)
        mem_edges = [e for e in g.edges if e.dst_port == "memory"]
        assert len(mem_edges) == 3
        assert len({e.src for e in mem_edges}) == 1  # all from enc output

    def test_residual_wiring(self):
        from repro.models import transformer
        g = transformer(layers=2)
        res = g.node("enc0_a_res")
        srcs = {e.src for e in g.in_edges("enc0_a_res")}
        assert srcs == {"src_embedding", "enc0_attn"}
