"""Tests for the FlexFlow-style MCMC comparator."""

import numpy as np
import pytest

from repro.baselines import MCMCOptions, mcmc_search
from repro.baselines.expert import auto_expert_strategy
from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.core.strategy import Strategy
from repro.models import mlp


@pytest.fixture(scope="module")
def problem():
    g = mlp(batch=32, hidden=(128, 128), classes=64)
    space = ConfigSpace.build(g, 4)
    tables = CostModel(GTX1080TI).build_tables(g, space)
    return g, space, tables


class TestMCMC:
    def test_never_worse_than_init(self, problem):
        g, space, tables = problem
        init = auto_expert_strategy(g, 4)
        res = mcmc_search(g, space, tables, init=init,
                          rng=np.random.default_rng(0),
                          options=MCMCOptions(max_iters=3000))
        assert res.cost <= init.cost(tables) + 1e-9

    def test_deterministic_under_seed(self, problem):
        g, space, tables = problem
        opts = MCMCOptions(max_iters=2000)
        a = mcmc_search(g, space, tables, rng=np.random.default_rng(5),
                        options=opts)
        b = mcmc_search(g, space, tables, rng=np.random.default_rng(5),
                        options=opts)
        assert a.cost == b.cost
        assert a.strategy.assignment == b.strategy.assignment

    def test_reaches_near_optimum_on_small_problem(self, problem):
        g, space, tables = problem
        best = find_best_strategy(g, space, tables)
        res = mcmc_search(g, space, tables,
                          rng=np.random.default_rng(1),
                          options=MCMCOptions(max_iters=30_000))
        assert res.cost <= 1.3 * best.cost

    def test_never_better_than_dp(self, problem):
        """The DP is exact; MCMC can at best tie it."""
        g, space, tables = problem
        best = find_best_strategy(g, space, tables)
        for seed in range(3):
            res = mcmc_search(g, space, tables,
                              rng=np.random.default_rng(seed),
                              options=MCMCOptions(max_iters=5000))
            assert res.cost >= best.cost - 1e-9

    def test_stopping_rule_bounds_iterations(self, problem):
        g, space, tables = problem
        res = mcmc_search(g, space, tables, rng=np.random.default_rng(2),
                          options=MCMCOptions(max_iters=100, min_iters=10))
        assert res.stats["iterations"] <= 100

    def test_reported_cost_is_exact(self, problem):
        g, space, tables = problem
        res = mcmc_search(g, space, tables, rng=np.random.default_rng(3),
                          options=MCMCOptions(max_iters=2000))
        assert res.strategy.cost(tables) == pytest.approx(res.cost)

    def test_serial_init_default(self, problem):
        g, space, tables = problem
        res = mcmc_search(g, space, tables, rng=np.random.default_rng(4),
                          options=MCMCOptions(max_iters=500, min_iters=500))
        serial = Strategy.serial(g)
        assert res.cost <= serial.cost(tables) + 1e-9

    def test_full_cost_gather_matches_scalar_loop(self, problem):
        """The vectorized full_cost (flat lc/tx gathers) must agree with a
        straightforward per-term evaluation on random states."""
        g, space, tables = problem
        names = list(g.node_names)
        rng = np.random.default_rng(7)
        for _ in range(20):
            idx = {n: int(rng.integers(space.size(n))) for n in names}
            strat = Strategy.from_indices(space, idx)
            # mcmc_search re-evaluates its best state through full_cost;
            # a zero-iteration run surfaces it for the init state.
            res = mcmc_search(g, space, tables, init=strat,
                              rng=np.random.default_rng(0),
                              options=MCMCOptions(max_iters=0, min_iters=0))
            scalar = sum(float(tables.lc[n][idx[n]]) for n in names)
            for (u, v), mat in tables.pair_tx.items():
                scalar += float(mat[idx[u], idx[v]])
            assert res.cost == pytest.approx(scalar, rel=1e-12)

    def test_time_budget(self, problem):
        g, space, tables = problem
        res = mcmc_search(g, space, tables, rng=np.random.default_rng(6),
                          options=MCMCOptions(max_iters=10**7, min_iters=10**7,
                                              time_budget=0.2))
        assert res.elapsed < 5.0
