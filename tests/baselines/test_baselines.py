"""Tests for data-parallel, expert, and random baselines."""

import numpy as np
import pytest

from repro.baselines import (
    auto_expert_strategy,
    data_parallel_strategy,
    mesh_tf_transformer_expert,
    owt_strategy,
    random_search,
    rnn_pipeline_expert,
)
from repro.baselines._util import pow2_floor
from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.exceptions import StrategyError
from repro.core.machine import GTX1080TI
from repro.models import alexnet, mlp, rnnlm, transformer


class TestUtil:
    @pytest.mark.parametrize("x,expect", [(1, 1), (2, 2), (3, 2), (7, 4),
                                          (8, 8), (1000, 512), (0, 1), (-5, 1)])
    def test_pow2_floor(self, x, expect):
        assert pow2_floor(x) == expect


class TestDataParallel:
    def test_splits_batch_only(self):
        g = mlp(batch=64)
        s = data_parallel_strategy(g, 8)
        s.validate(g, 8)
        for op in g:
            cfg = s[op.name]
            assert cfg[op.dim_index("b")] == 8
            assert all(c == 1 for i, c in enumerate(cfg)
                       if i != op.dim_index("b"))

    def test_caps_at_batch(self):
        g = mlp(batch=4)
        s = data_parallel_strategy(g, 64)
        assert s[g.node_names[0]][0] == 4

    def test_valid_on_all_benchmarks(self):
        for builder in (alexnet, rnnlm):
            g = builder()
            data_parallel_strategy(g, 16).validate(g, 16)


class TestOWT:
    def test_conv_data_fc_param(self):
        g = alexnet()
        s = owt_strategy(g, 8)
        s.validate(g, 8)
        conv1 = g.node("conv1")
        assert s["conv1"][conv1.dim_index("b")] == 8
        fc1 = g.node("fc1")
        assert s["fc1"][fc1.dim_index("n")] == 8
        assert s["fc1"][fc1.dim_index("b")] == 1

    def test_rejects_unknown_kind(self):
        g = rnnlm()
        with pytest.raises(StrategyError):
            owt_strategy(g, 8)


class TestRNNExpert:
    def test_layer_pipeline_plus_data(self):
        g = rnnlm(layers=2)
        s = rnn_pipeline_expert(g, 8)
        s.validate(g, 8)
        lstm = g.node("lstm")
        cfg = s["lstm"]
        assert cfg[lstm.dim_index("l")] == 2
        assert cfg[lstm.dim_index("b")] == 4


class TestMeshTFExpert:
    def test_mesh_shape(self):
        g = transformer(layers=2)
        s = mesh_tf_transformer_expert(g, 16)
        s.validate(g, 16)
        attn = g.node("enc0_attn")
        cfg = s["enc0_attn"]
        assert cfg[attn.dim_index("b")] == 4
        assert cfg[attn.dim_index("h")] == 4

    def test_explicit_model_split(self):
        g = transformer(layers=2)
        s = mesh_tf_transformer_expert(g, 16, model_split=8)
        attn = g.node("enc0_attn")
        assert s["enc0_attn"][attn.dim_index("h")] == 8

    def test_vocab_layers_split(self):
        g = transformer(layers=2)
        s = mesh_tf_transformer_expert(g, 16)
        proj = g.node("projection")
        assert s["projection"][proj.dim_index("v")] == 4


class TestAutoDispatch:
    def test_dispatch(self):
        assert auto_expert_strategy(rnnlm(), 8)["lstm"][0] == 2
        g = transformer(layers=2)
        attn = g.node("enc0_attn")
        assert auto_expert_strategy(g, 8)[
            "enc0_attn"][attn.dim_index("h")] > 1
        g = alexnet()
        assert auto_expert_strategy(g, 8)["fc1"][1] == 8


class TestRandomSearch:
    def test_deterministic_and_valid(self):
        g = mlp(batch=16, hidden=(32,))
        space = ConfigSpace.build(g, 4)
        tables = CostModel(GTX1080TI).build_tables(g, space)
        a = random_search(g, space, tables, samples=50,
                          rng=np.random.default_rng(7))
        b = random_search(g, space, tables, samples=50,
                          rng=np.random.default_rng(7))
        assert a.cost == b.cost
        a.strategy.validate(g, 4)

    def test_more_samples_never_worse(self):
        g = mlp(batch=16, hidden=(32,))
        space = ConfigSpace.build(g, 4)
        tables = CostModel(GTX1080TI).build_tables(g, space)
        few = random_search(g, space, tables, samples=5,
                            rng=np.random.default_rng(3))
        many = random_search(g, space, tables, samples=500,
                             rng=np.random.default_rng(3))
        assert many.cost <= few.cost
