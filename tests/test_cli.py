"""Tests for the ``pase`` command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_search(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4"]) == 0
        out = capsys.readouterr().out
        assert "lstm" in out and "cost=" in out

    def test_search_json_output(self, tmp_path, capsys):
        path = tmp_path / "strategy.json"
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "lstm" in data and len(data["lstm"]) == 5

    def test_search_methods(self, capsys):
        for method in ("data_parallel", "expert"):
            assert main(["search", "--model", "rnnlm", "--p", "4",
                         "--method", method]) == 0

    def test_simulate(self, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "data_parallel", "ours"]) == 0
        out = capsys.readouterr().out
        assert "samples/s" in out and "x vs dp" in out

    def test_simulate_2080ti(self, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--machine", "2080ti",
                     "--methods", "data_parallel", "ours"]) == 0

    def test_stats(self, capsys):
        assert main(["stats", "--model", "alexnet", "--p", "4"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["nodes"] == 21

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["search", "--model", "lenet", "--p", "4"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLIExtensions:
    def test_export(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        assert main(["export", "--model", "rnnlm", "--p", "4",
                     "--out", str(path)]) == 0
        import json as _json
        spec = _json.loads(path.read_text())
        assert "lstm" in spec and spec["lstm"]["devices"] >= 1

    def test_export_stdout(self, capsys):
        assert main(["export", "--model", "rnnlm", "--p", "4",
                     "--method", "data_parallel"]) == 0
        out = capsys.readouterr().out
        assert '"iteration_splits"' in out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "--model", "alexnet", "--p", "4",
                     "--stages", "2"]) == 0
        out = capsys.readouterr().out
        assert "stage 0" in out and "bottleneck" in out

    def test_simulate_gantt(self, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "ours", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out and "gpu0" in out


class TestCLIFrontier:
    def test_search_frontier_prints_table(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--frontier"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "min-cost" in out and "peak memory" in out

    def test_search_frontier_eps(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--frontier", "--frontier-eps", "0.5"]) == 0
        assert "Pareto frontier" in capsys.readouterr().out

    def test_frontier_requires_ours(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--frontier", "--method", "data_parallel"]) == 2
        assert "requires --method ours" in capsys.readouterr().err


class TestCLIResilience:
    def _plan(self, tmp_path, **kw):
        plan = {"relative_times": True,
                "device_failures": [
                    {"device": 1, "time": 0.5, "downtime": 0.5}],
                "stragglers": [{"device": 2, "slowdown": 2.0}]}
        plan.update(kw)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        return str(path)

    def test_search_resilient_flag(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--resilient"]) == 0
        out = capsys.readouterr().out
        assert "cost=" in out and "degradation" in out

    def test_search_resilient_tight_budget_degrades(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--resilient", "--memory-budget", "20000"]) == 0
        out = capsys.readouterr().out
        assert "completed after" in out and "retries" in out

    def test_search_budget_without_resilient_exits_3(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--memory-budget", "64"]) == 3
        err = capsys.readouterr().err
        assert "budget_bytes=64" in err
        assert "exit code 3" in err

    def test_simulate_with_faults(self, tmp_path, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "ours",
                     "--faults", self._plan(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fault-injected" in out and "slowdown" in out

    def test_simulate_faults_with_replan_and_ckpt(self, tmp_path, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "ours",
                     "--faults", self._plan(tmp_path),
                     "--replan", "--ckpt-interval", "100"]) == 0
        out = capsys.readouterr().out
        assert "effective step time" in out
        assert "elastic re-plan" in out and "break-even" in out

    def test_simulate_bad_plan_exits_4(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "ours", "--faults", str(bad)]) == 4
        assert "not valid JSON" in capsys.readouterr().err


class TestCLIExperimentCommands:
    def test_table1_subcommand(self, capsys):
        assert main(["table1", "--benchmarks", "rnnlm"]) == 0
        out = capsys.readouterr().out
        assert "rnnlm/Ours" in out and "rnnlm/BF" in out

    def test_figure6_subcommand(self, capsys):
        assert main(["figure6", "--benchmarks", "rnnlm"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out and "Figure 6b" in out


class TestCLIHardenedRuntime:
    """Documented exit codes and journal/resume behavior of `search`."""

    ARGS = ["search", "--model", "rnnlm", "--p", "4"]

    def test_clean_run_reports_zero_degradations(self, capsys):
        assert main(self.ARGS) == 0
        assert "zero degradations" in capsys.readouterr().out

    def test_deadline_zero_exits_5(self, capsys):
        assert main(self.ARGS + ["--deadline", "0"]) == 5
        err = capsys.readouterr().err
        assert "deadline exceeded" in err
        assert "exit code 5" in err

    def test_generous_deadline_exits_0(self, capsys):
        assert main(self.ARGS + ["--deadline", "3600"]) == 0

    def test_resume_without_journal_exits_2(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "--journal-dir" in capsys.readouterr().err

    def test_resume_with_empty_journal_dir_exits_2(self, tmp_path, capsys):
        assert main(self.ARGS + ["--journal-dir", str(tmp_path / "j"),
                                 "--resume"]) == 2
        assert "no journal" in capsys.readouterr().err

    def test_journalled_run_then_resume_is_identical(self, tmp_path, capsys):
        import re

        jdir = str(tmp_path / "journal")
        assert main(self.ARGS + ["--journal-dir", jdir]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--journal-dir", jdir, "--resume"]) == 0
        second = capsys.readouterr().out
        cost = re.compile(r"# cost=(\S+)")
        assert cost.search(first).group(1) == cost.search(second).group(1)
        assert "resumed from journal" in second

    def test_resume_fingerprint_mismatch_exits_2(self, tmp_path, capsys):
        jdir = str(tmp_path / "journal")
        assert main(self.ARGS + ["--journal-dir", jdir]) == 0
        capsys.readouterr()
        assert main(["search", "--model", "rnnlm", "--p", "8",
                     "--journal-dir", jdir, "--resume"]) == 2
        assert "different problem" in capsys.readouterr().err

    def test_exit_codes_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for code in range(7):
            assert f"  {code}  " in out
