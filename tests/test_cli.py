"""Tests for the ``pase`` command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_search(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4"]) == 0
        out = capsys.readouterr().out
        assert "lstm" in out and "cost=" in out

    def test_search_json_output(self, tmp_path, capsys):
        path = tmp_path / "strategy.json"
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "lstm" in data and len(data["lstm"]) == 5

    def test_search_methods(self, capsys):
        for method in ("data_parallel", "expert"):
            assert main(["search", "--model", "rnnlm", "--p", "4",
                         "--method", method]) == 0

    def test_simulate(self, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "data_parallel", "ours"]) == 0
        out = capsys.readouterr().out
        assert "samples/s" in out and "x vs dp" in out

    def test_simulate_2080ti(self, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--machine", "2080ti",
                     "--methods", "data_parallel", "ours"]) == 0

    def test_stats(self, capsys):
        assert main(["stats", "--model", "alexnet", "--p", "4"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["nodes"] == 21

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["search", "--model", "lenet", "--p", "4"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLIExtensions:
    def test_export(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        assert main(["export", "--model", "rnnlm", "--p", "4",
                     "--out", str(path)]) == 0
        import json as _json
        spec = _json.loads(path.read_text())
        assert "lstm" in spec and spec["lstm"]["devices"] >= 1

    def test_export_stdout(self, capsys):
        assert main(["export", "--model", "rnnlm", "--p", "4",
                     "--method", "data_parallel"]) == 0
        out = capsys.readouterr().out
        assert '"iteration_splits"' in out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "--model", "alexnet", "--p", "4",
                     "--stages", "2"]) == 0
        out = capsys.readouterr().out
        assert "stage 0" in out and "bottleneck" in out

    def test_simulate_gantt(self, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "ours", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out and "gpu0" in out


class TestCLIExperimentCommands:
    def test_table1_subcommand(self, capsys):
        assert main(["table1", "--benchmarks", "rnnlm"]) == 0
        out = capsys.readouterr().out
        assert "rnnlm/Ours" in out and "rnnlm/BF" in out

    def test_figure6_subcommand(self, capsys):
        assert main(["figure6", "--benchmarks", "rnnlm"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out and "Figure 6b" in out
