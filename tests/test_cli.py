"""Tests for the ``pase`` command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_search(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4"]) == 0
        out = capsys.readouterr().out
        assert "lstm" in out and "cost=" in out

    def test_search_json_output(self, tmp_path, capsys):
        path = tmp_path / "strategy.json"
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "lstm" in data and len(data["lstm"]) == 5

    def test_search_methods(self, capsys):
        for method in ("data_parallel", "expert"):
            assert main(["search", "--model", "rnnlm", "--p", "4",
                         "--method", method]) == 0

    def test_simulate(self, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "data_parallel", "ours"]) == 0
        out = capsys.readouterr().out
        assert "samples/s" in out and "x vs dp" in out

    def test_simulate_2080ti(self, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--machine", "2080ti",
                     "--methods", "data_parallel", "ours"]) == 0

    def test_stats(self, capsys):
        assert main(["stats", "--model", "alexnet", "--p", "4"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["nodes"] == 21

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["search", "--model", "lenet", "--p", "4"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLIExtensions:
    def test_export(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        assert main(["export", "--model", "rnnlm", "--p", "4",
                     "--out", str(path)]) == 0
        import json as _json
        spec = _json.loads(path.read_text())
        assert "lstm" in spec and spec["lstm"]["devices"] >= 1

    def test_export_stdout(self, capsys):
        assert main(["export", "--model", "rnnlm", "--p", "4",
                     "--method", "data_parallel"]) == 0
        out = capsys.readouterr().out
        assert '"iteration_splits"' in out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "--model", "alexnet", "--p", "4",
                     "--stages", "2"]) == 0
        out = capsys.readouterr().out
        assert "stage 0" in out and "bottleneck" in out

    def test_simulate_gantt(self, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "ours", "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out and "gpu0" in out


class TestCLIResilience:
    def _plan(self, tmp_path, **kw):
        plan = {"relative_times": True,
                "device_failures": [
                    {"device": 1, "time": 0.5, "downtime": 0.5}],
                "stragglers": [{"device": 2, "slowdown": 2.0}]}
        plan.update(kw)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        return str(path)

    def test_search_resilient_flag(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--resilient"]) == 0
        out = capsys.readouterr().out
        assert "cost=" in out and "degradation" in out

    def test_search_resilient_tight_budget_degrades(self, capsys):
        assert main(["search", "--model", "rnnlm", "--p", "4",
                     "--resilient", "--memory-budget", "20000"]) == 0
        out = capsys.readouterr().out
        assert "completed after" in out and "retries" in out

    def test_search_budget_without_resilient_raises(self):
        from repro.core.exceptions import SearchResourceError
        with pytest.raises(SearchResourceError, match="budget_bytes=64"):
            main(["search", "--model", "rnnlm", "--p", "4",
                  "--memory-budget", "64"])

    def test_simulate_with_faults(self, tmp_path, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "ours",
                     "--faults", self._plan(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fault-injected" in out and "slowdown" in out

    def test_simulate_faults_with_replan_and_ckpt(self, tmp_path, capsys):
        assert main(["simulate", "--model", "rnnlm", "--p", "4",
                     "--methods", "ours",
                     "--faults", self._plan(tmp_path),
                     "--replan", "--ckpt-interval", "100"]) == 0
        out = capsys.readouterr().out
        assert "effective step time" in out
        assert "elastic re-plan" in out and "break-even" in out

    def test_simulate_bad_plan_rejected(self, tmp_path):
        from repro.core.exceptions import FaultPlanError
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError):
            main(["simulate", "--model", "rnnlm", "--p", "4",
                  "--methods", "ours", "--faults", str(bad)])


class TestCLIExperimentCommands:
    def test_table1_subcommand(self, capsys):
        assert main(["table1", "--benchmarks", "rnnlm"]) == 0
        out = capsys.readouterr().out
        assert "rnnlm/Ours" in out and "rnnlm/BF" in out

    def test_figure6_subcommand(self, capsys):
        assert main(["figure6", "--benchmarks", "rnnlm"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out and "Figure 6b" in out
