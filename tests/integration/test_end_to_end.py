"""End-to-end integration: build -> search -> place -> simulate.

Exercises the full public pipeline on every benchmark at small scale and
checks the paper's headline orderings hold under both the analytic oracle
and the cluster simulator.
"""

import pytest

import repro
from repro.baselines import auto_expert_strategy, data_parallel_strategy
from repro.cluster import simulate_step
from repro.core import ConfigSpace, CostModel, GTX1080TI, RTX2080TI
from repro.models import BENCHMARKS, mlp


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None


@pytest.mark.parametrize("bench", sorted(BENCHMARKS))
def test_full_pipeline(bench):
    graph = BENCHMARKS[bench]()
    p = 4
    space = ConfigSpace.build(graph, p)
    tables = CostModel(GTX1080TI).build_tables(graph, space)

    ours = repro.find_best_strategy(graph, space, tables)
    dp = data_parallel_strategy(graph, p)
    expert = auto_expert_strategy(graph, p)

    # Analytic ordering (the DP is exact over the shared oracle).
    assert ours.cost <= dp.cost(tables) + 1e-6
    assert ours.cost <= expert.cost(tables) + 1e-6

    # The strategies all execute on the simulator.
    for strat in (ours.strategy, dp, expert):
        rep = simulate_step(graph, strat, GTX1080TI, p)
        assert rep.step_time > 0 and rep.throughput > 0


def test_low_balance_machine_rewards_search_more():
    """Fig. 6's premise: the gap between the found strategy and data
    parallelism widens on the low machine-balance (2080Ti) system."""
    graph = BENCHMARKS["alexnet"]()
    p = 8
    gaps = {}
    for machine in (GTX1080TI, RTX2080TI):
        space = ConfigSpace.build(graph, p)
        tables = CostModel(machine).build_tables(graph, space)
        ours = repro.find_best_strategy(graph, space, tables)
        dp = data_parallel_strategy(graph, p)
        rep_ours = simulate_step(graph, ours.strategy, machine, p)
        rep_dp = simulate_step(graph, dp, machine, p)
        gaps[machine.name] = rep_ours.throughput / rep_dp.throughput
    assert gaps["2080Ti"] > gaps["1080Ti"]


def test_quickstart_flow():
    """The README quickstart, as a test."""
    graph = mlp(batch=64, in_dim=784, hidden=(1024, 1024), classes=10)
    space = ConfigSpace.build(graph, 8)
    tables = CostModel(GTX1080TI).build_tables(graph, space)
    result = repro.find_best_strategy(graph, space, tables)
    table = result.strategy.format_table(graph)
    assert "fc1" in table
    report = simulate_step(graph, result.strategy, GTX1080TI, 8)
    assert report.throughput > 0
