"""Tests for checkpoint/restart cost modeling."""

import pytest

from repro.core.exceptions import FaultPlanError
from repro.resilience import (
    CheckpointPolicy,
    effective_step_time,
    young_daly_interval,
)


class TestPolicy:
    def test_rejects_bad_interval(self):
        with pytest.raises(FaultPlanError):
            CheckpointPolicy(interval_steps=0)

    def test_rejects_negative_times(self):
        with pytest.raises(FaultPlanError):
            CheckpointPolicy(checkpoint_time=-1.0)

    def test_overhead_amortizes_over_interval(self):
        p = CheckpointPolicy(interval_steps=50, checkpoint_time=5.0)
        assert p.overhead_per_step() == pytest.approx(0.1)

    def test_expected_lost_work_is_half_interval(self):
        p = CheckpointPolicy(interval_steps=10, checkpoint_time=0.0)
        assert p.expected_lost_work(2.0) == pytest.approx(10.0)


class TestEffectiveStepTime:
    def test_failure_free_adds_only_write_overhead(self):
        p = CheckpointPolicy(interval_steps=100, checkpoint_time=1.0)
        assert effective_step_time(0.5, p) == pytest.approx(0.5 + 0.01)

    def test_failures_add_restore_and_redo(self):
        p = CheckpointPolicy(interval_steps=10, checkpoint_time=0.0,
                             restore_time=3.0)
        eff = effective_step_time(1.0, p, failures_per_step=0.1)
        # 1.0 + 0.1 * (3.0 restore + 5.0 expected redo)
        assert eff == pytest.approx(1.8)

    def test_monotone_in_failure_rate(self):
        p = CheckpointPolicy()
        a = effective_step_time(0.1, p, failures_per_step=1e-5)
        b = effective_step_time(0.1, p, failures_per_step=1e-3)
        assert b > a

    def test_rejects_nonpositive_step(self):
        with pytest.raises(FaultPlanError):
            effective_step_time(0.0, CheckpointPolicy())


class TestYoungDaly:
    def test_matches_formula(self):
        # sqrt(2 * C * M) / step with C=2, MTBF=10000 steps of 1s.
        assert young_daly_interval(1.0, 2.0, 10_000) == 200

    def test_interval_grows_with_mtbf(self):
        a = young_daly_interval(0.5, 1.0, 1_000)
        b = young_daly_interval(0.5, 1.0, 100_000)
        assert b > a

    def test_at_least_one_step(self):
        assert young_daly_interval(10.0, 1e-6, 1) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(FaultPlanError):
            young_daly_interval(0.0, 1.0, 100)
