"""Tests for the gracefully degrading search runner."""

import numpy as np
import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.exceptions import SearchResourceError
from repro.core.machine import GTX1080TI
from repro.core.sequencer import breadth_first_seq
from repro.resilience import coarsen_config_space, resilient_find_best_strategy
from tests.conftest import build_dag


@pytest.fixture(scope="module")
def problem():
    g = build_dag(6, [(0, 2), (1, 3), (2, 4)], batch=16, width=16)
    space = ConfigSpace.build(g, 8)
    tables = CostModel(GTX1080TI).build_tables(g, space)
    return g, space, tables


class TestCoarsening:
    def test_halves_config_counts(self, problem):
        g, space, tables = problem
        sub_space, sub_tables = coarsen_config_space(space, tables)
        for name in space.tables:
            assert sub_space.size(name) <= -(-space.size(name) // 2) + 1
            assert sub_space.size(name) >= 1

    def test_keeps_serial_config(self, problem):
        g, space, tables = problem
        sub_space, _ = coarsen_config_space(space, tables)
        for op in g:
            serial = (1,) * op.rank
            assert sub_space.index_of(op.name, serial) >= 0

    def test_costs_sliced_consistently(self, problem):
        """A strategy found in the coarsened space costs the same under
        the coarsened and the original oracle."""
        g, space, tables = problem
        sub_space, sub_tables = coarsen_config_space(space, tables)
        res = find_best_strategy(g, sub_space, sub_tables)
        assert res.cost == pytest.approx(res.strategy.cost(tables))

    def test_rejects_bad_factor(self, problem):
        _, space, tables = problem
        with pytest.raises(ValueError):
            coarsen_config_space(space, tables, factor=1)


class TestResilientSearch:
    def test_no_degradation_when_budget_fits(self, problem):
        g, space, tables = problem
        res, rep = resilient_find_best_strategy(g, space, tables)
        baseline = find_best_strategy(g, space, tables)
        assert res.cost == pytest.approx(baseline.cost)
        assert rep.succeeded and rep.retries == 0
        assert rep.attempts[0].stage == "initial" and rep.attempts[0].ok
        assert res.stats["resilience_retries"] == 0.0

    def test_order_fallback_rescues_bad_ordering(self):
        """An ordering whose tables blow the budget falls back to
        GENERATESEQ and completes.  A star-shaped DAG makes the
        breadth-first dependent sets (and hence its tables) huge while
        GENERATESEQ stays small — the Table I OOM pattern in miniature."""
        g = build_dag(8, [(0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (1, 7)],
                      batch=16, width=16)
        space = ConfigSpace.build(g, 8)
        tables = CostModel(GTX1080TI).build_tables(g, space)
        order = breadth_first_seq(g)
        # Between GENERATESEQ's peak (~70 KB) and breadth-first's (~28 MB).
        budget = 1 << 20
        with pytest.raises(SearchResourceError):
            find_best_strategy(g, space, tables, order=order,
                               memory_budget=budget, chunk_cells=4096)
        res, rep = resilient_find_best_strategy(
            g, space, tables, order=order, memory_budget=budget,
            chunk_cells=4096)
        assert rep.succeeded
        assert "generateseq-order" in rep.degradations
        assert res.cost == pytest.approx(
            find_best_strategy(g, space, tables).cost)

    def test_frontier_select_rescues_tight_budget(self, problem):
        """A tightened budget that some frontier point fits is rescued by
        the exact frontier-select rung — not by lossy coarsening."""
        g, space, tables = problem
        gen_peak = int(find_best_strategy(g, space, tables)
                       .stats["peak_bytes"])
        budget = gen_peak // 2
        with pytest.raises(SearchResourceError):
            find_best_strategy(g, space, tables, memory_budget=budget)
        res, rep = resilient_find_best_strategy(
            g, space, tables, memory_budget=budget)
        assert rep.succeeded
        assert "frontier-select" in rep.degradations
        assert not any(s.startswith("coarsen") for s in rep.degradations)
        res.strategy.validate(g, space.p)
        # The selection is exact and self-describing: a length-1 frontier
        # whose point is the result, with its footprint in the stats.
        assert res.frontier[0].cost == res.cost
        assert res.frontier[0].peak_bytes <= budget
        assert res.stats["frontier_selected_peak_bytes"] == \
            res.frontier[0].peak_bytes
        assert res.stats["resilience_retries"] == float(rep.retries)

    def test_coarsening_rescues_when_no_frontier_point_fits(self, problem):
        """A budget below every frontier footprint exhausts rung 4 and
        falls through to configuration-space coarsening."""
        from repro.core.frontier import find_frontier_strategy

        g, space, tables = problem
        frontier = find_frontier_strategy(g, space, tables).frontier
        budget = int(min(pt.peak_bytes for pt in frontier)) - 1
        res, rep = resilient_find_best_strategy(
            g, space, tables, memory_budget=budget)
        assert rep.succeeded
        assert "frontier-select" in rep.degradations
        failed = next(a for a in rep.attempts
                      if a.stage == "frontier-select")
        assert not failed.ok
        assert failed.requested_bytes is not None
        assert any(s.startswith("coarsen") for s in rep.degradations)
        # The coarsened optimum is still a valid strategy on the graph.
        res.strategy.validate(g, space.p)
        assert np.isfinite(res.cost)

    def test_default_budget_never_runs_frontier_select(self, problem):
        """At the default budget the rung is skipped entirely — scalar
        callers keep the scalar ladder."""
        g, space, tables = problem
        _, rep = resilient_find_best_strategy(g, space, tables)
        assert "frontier-select" not in rep.degradations

    def test_retry_chain_recorded(self, problem):
        g, space, tables = problem
        gen_peak = int(find_best_strategy(g, space, tables)
                       .stats["peak_bytes"])
        res, rep = resilient_find_best_strategy(
            g, space, tables, memory_budget=gen_peak // 2)
        assert len(rep.attempts) == rep.retries + 1
        assert all(not a.ok for a in rep.attempts[:-1])
        assert rep.attempts[-1].ok
        failed = rep.attempts[0]
        assert failed.requested_bytes is not None
        assert failed.budget_bytes == gen_peak // 2
        text = rep.summary()
        assert "initial" in text and "ok" in text
        assert "degradation" in text

    def test_hopeless_budget_raises_with_report(self, problem):
        g, space, tables = problem
        with pytest.raises(SearchResourceError) as exc:
            resilient_find_best_strategy(g, space, tables, memory_budget=8)
        report = exc.value.report
        assert not report.succeeded
        assert report.retries >= 1
        assert any(s.startswith("coarsen") for s in report.degradations)
        assert "FAILED" in report.summary()
