"""Tests for elastic re-planning after fail-stop device loss."""

import math

import pytest

from repro.baselines import data_parallel_strategy
from repro.core.exceptions import FaultPlanError
from repro.core.machine import GTX1080TI
from repro.models import mlp
from repro.resilience import (
    CheckpointPolicy,
    DeviceFailure,
    FaultPlan,
    Straggler,
    elastic_replan,
)


@pytest.fixture(scope="module")
def small_mlp():
    return mlp(batch=64, hidden=(256, 256), classes=128)


def failstop_plan():
    return FaultPlan(
        device_failures=(DeviceFailure(device=1, time=0.5, downtime=0.5),),
        relative_times=True)


class TestElasticReplan:
    def test_replan_on_survivors_is_valid_and_finite(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        rep = elastic_replan(small_mlp, s, GTX1080TI, 4, failstop_plan())
        assert rep.old_p == 4 and rep.new_p == 3
        assert rep.failed_devices == (1,)
        rep.strategy.validate(small_mlp, 3)
        assert math.isfinite(rep.recovery_cost) and rep.recovery_cost > 0
        assert rep.degraded_step_time > rep.healthy_step_time
        assert rep.replanned_step_time > 0
        assert rep.resilience.succeeded

    def test_breakeven_when_replanning_wins(self, small_mlp):
        """A long blackout makes the degraded step so slow that
        re-planning pays off in finitely many steps."""
        s = data_parallel_strategy(small_mlp, 4)
        plan = FaultPlan(device_failures=(
            DeviceFailure(device=1, time=0.5, downtime=20.0),),
            relative_times=True)
        rep = elastic_replan(small_mlp, s, GTX1080TI, 4, plan)
        assert rep.degraded_step_time > rep.replanned_step_time
        assert math.isfinite(rep.breakeven_steps)
        assert rep.breakeven_steps == pytest.approx(
            rep.recovery_cost
            / (rep.degraded_step_time - rep.replanned_step_time))

    def test_checkpoint_policy_prices_restore_and_redo(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        policy = CheckpointPolicy(interval_steps=10, checkpoint_time=0.1,
                                  restore_time=5.0)
        rep = elastic_replan(small_mlp, s, GTX1080TI, 4, failstop_plan(),
                             policy=policy)
        assert rep.restore_time == 5.0
        assert rep.lost_work == pytest.approx(
            policy.expected_lost_work(rep.healthy_step_time))
        no_ckpt = elastic_replan(small_mlp, s, GTX1080TI, 4, failstop_plan())
        assert no_ckpt.restore_time == 0.0
        # Without checkpoints only the interrupted partial step is redone.
        assert no_ckpt.lost_work == pytest.approx(
            0.5 * no_ckpt.healthy_step_time)

    def test_requires_a_failstop(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        plan = FaultPlan(stragglers=(Straggler(0, 2.0),))
        with pytest.raises(FaultPlanError):
            elastic_replan(small_mlp, s, GTX1080TI, 4, plan)

    def test_requires_survivors(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 2)
        plan = FaultPlan(device_failures=(
            DeviceFailure(0, 0.5), DeviceFailure(1, 0.5)),
            relative_times=True)
        with pytest.raises(FaultPlanError):
            elastic_replan(small_mlp, s, GTX1080TI, 2, plan)

    def test_summary_renders(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        rep = elastic_replan(small_mlp, s, GTX1080TI, 4, failstop_plan())
        text = rep.summary()
        assert "survivors" in text and "break-even" in text
