"""Tests for fault plans and their injection into the step simulator."""

import math

import pytest

from repro.baselines import data_parallel_strategy
from repro.cluster import simulate_step
from repro.cluster.events import ListScheduler, Task
from repro.core.exceptions import FaultPlanError
from repro.core.machine import GTX1080TI
from repro.models import mlp
from repro.resilience import (
    DeviceFailure,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    Straggler,
    TransientFaults,
)


@pytest.fixture(scope="module")
def small_mlp():
    return mlp(batch=64, hidden=(256, 256), classes=128)


def midstep_failure(device=1):
    return FaultPlan(
        device_failures=(DeviceFailure(device=device, time=0.5, downtime=0.5),),
        relative_times=True)


class TestFaultPlan:
    def test_rejects_device_outside_cluster(self):
        with pytest.raises(FaultPlanError):
            midstep_failure(device=9).validate(4)

    def test_rejects_infinite_downtime(self):
        plan = FaultPlan(device_failures=(
            DeviceFailure(device=0, time=0.1, downtime=math.inf),))
        with pytest.raises(FaultPlanError):
            plan.validate(4)

    def test_rejects_sublinear_slowdown(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(stragglers=(Straggler(0, 0.5),)).validate(4)
        with pytest.raises(FaultPlanError):
            FaultPlan(link_degradations=(LinkDegradation(0, 0.0),)).validate(4)

    def test_rejects_bad_transient_probability(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(transients=TransientFaults(probability=1.5)).validate(4)

    def test_json_round_trip(self):
        plan = FaultPlan(
            device_failures=(DeviceFailure(1, 0.5, 0.25),),
            stragglers=(Straggler(2, 3.0),),
            link_degradations=(LinkDegradation(0, 2.0),),
            transients=TransientFaults(probability=0.1, seed=5),
            relative_times=True)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_malformed_json_raises(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"stragglers": [{"gpu": 1}]}')

    def test_resolve_scales_relative_times(self):
        plan = midstep_failure()
        resolved = plan.resolve(2.0)
        assert resolved.device_failures[0].time == 1.0
        assert resolved.device_failures[0].downtime == 1.0
        assert not resolved.relative_times
        # Absolute plans resolve to themselves.
        assert resolved.resolve(123.0) is resolved

    def test_failed_devices_deduplicated(self):
        plan = FaultPlan(device_failures=(
            DeviceFailure(2, 0.1), DeviceFailure(0, 0.2), DeviceFailure(2, 0.3)))
        assert plan.failed_devices() == (0, 2)


class TestInjector:
    def test_requires_resolved_plan(self):
        with pytest.raises(FaultPlanError):
            FaultInjector(midstep_failure(), 4)

    def test_straggler_stretches_compute(self):
        inj = FaultInjector(FaultPlan(stragglers=(Straggler(0, 2.0),)), 2)
        t = Task(kind="fwd", label="f", resources=(("gpu", 0),), duration=1.0)
        start, dur = inj.apply(t, 0.0, 1.0)
        assert (start, dur) == (0.0, 2.0)
        assert inj.events[0].fault == "straggler"
        # Other devices untouched.
        t2 = Task(kind="fwd", label="f2", resources=(("gpu", 1),), duration=1.0)
        assert inj.apply(t2, 0.0, 1.0) == (0.0, 1.0)

    def test_link_degradation_stretches_transfers(self):
        plan = FaultPlan(link_degradations=(LinkDegradation(1, 3.0),))
        inj = FaultInjector(plan, 2)
        t = Task(kind="xfer", label="x",
                 resources=(("tx", 0), ("rx", 1)), duration=1.0)
        assert inj.apply(t, 0.0, 1.0) == (0.0, 3.0)

    def test_failstop_restarts_task_after_window(self):
        plan = FaultPlan(device_failures=(
            DeviceFailure(device=0, time=1.0, downtime=2.0),))
        inj = FaultInjector(plan, 1)
        t = Task(kind="fwd", label="f", resources=(("gpu", 0),), duration=1.0)
        # Overlaps the blackout: partial work lost, restarts at t=3.
        start, dur = inj.apply(t, 0.5, 1.0)
        assert (start, dur) == (3.0, 1.0)
        # Entirely before or after: untouched.
        assert inj.apply(t, 3.5, 1.0) == (3.5, 1.0)
        t_early = Task(kind="fwd", label="e", resources=(("gpu", 0),),
                       duration=0.5)
        assert inj.apply(t_early, 0.0, 0.5) == (0.0, 0.5)

    def test_transient_retries_deterministic(self):
        plan = FaultPlan(transients=TransientFaults(
            probability=0.9, backoff=0.1, max_retries=3, seed=42))
        t = Task(kind="gradsync", label="g", resources=(("tx", 0), ("rx", 0)),
                 duration=1.0)
        runs = []
        for _ in range(2):
            inj = FaultInjector(plan, 1)
            runs.append(inj.apply(t, 0.0, 1.0))
        assert runs[0] == runs[1]
        assert runs[0][1] > 1.0  # p=0.9 practically guarantees a retry

    def test_transients_skip_non_collectives(self):
        plan = FaultPlan(transients=TransientFaults(probability=0.99, seed=0))
        inj = FaultInjector(plan, 1)
        t = Task(kind="fwd", label="f", resources=(("gpu", 0),), duration=1.0)
        assert inj.apply(t, 0.0, 1.0) == (0.0, 1.0)


class TestSimulateWithFaults:
    def test_midstep_failstop_increases_step_time(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        healthy = simulate_step(small_mlp, s, GTX1080TI, 4)
        faulted = simulate_step(small_mlp, s, GTX1080TI, 4,
                                faults=midstep_failure())
        assert faulted.baseline_step_time == pytest.approx(healthy.step_time)
        assert faulted.step_time > healthy.step_time
        assert faulted.fault_slowdown > 1.0
        assert any(e.fault == "failstop" for e in faulted.fault_events)
        assert "faulted" in faulted.summary()

    def test_empty_plan_is_noop(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        rep = simulate_step(small_mlp, s, GTX1080TI, 4, faults=FaultPlan())
        assert rep.baseline_step_time is None
        assert rep.fault_events == []
        assert rep.fault_slowdown == 1.0

    def test_faulted_step_deterministic(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        plan = FaultPlan(
            stragglers=(Straggler(1, 2.5),),
            transients=TransientFaults(probability=0.3, seed=11))
        a = simulate_step(small_mlp, s, GTX1080TI, 4, faults=plan)
        b = simulate_step(small_mlp, s, GTX1080TI, 4, faults=plan)
        assert a.step_time == b.step_time
        assert len(a.fault_events) == len(b.fault_events)

    def test_straggler_bounded_by_slowdown(self, small_mlp):
        """One slow device cannot stretch the step by more than its own
        slowdown factor."""
        s = data_parallel_strategy(small_mlp, 4)
        plan = FaultPlan(stragglers=(Straggler(0, 2.0),))
        healthy = simulate_step(small_mlp, s, GTX1080TI, 4)
        faulted = simulate_step(small_mlp, s, GTX1080TI, 4, faults=plan)
        assert healthy.step_time < faulted.step_time
        assert faulted.step_time <= healthy.step_time * 2.0 + 1e-12

    def test_scheduler_honors_injector_hook(self):
        """The raw scheduler applies the perturbation hook per task."""
        sched = ListScheduler()
        a = sched.add(Task(kind="fwd", label="a", resources=(("gpu", 0),),
                           duration=1.0))
        sched.add(Task(kind="fwd", label="b", resources=(("gpu", 0),),
                       duration=1.0, deps=(a,)))
        plan = FaultPlan(stragglers=(Straggler(0, 3.0),))
        makespan, _ = sched.run(faults=FaultInjector(plan, 1))
        assert makespan == pytest.approx(6.0)
        assert sched.run()[0] == pytest.approx(2.0)  # healthy re-run
