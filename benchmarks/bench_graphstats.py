"""Fig. 5 / Section III-C: graph structure and ordering statistics.

Times GENERATESEQ on the real model graphs and asserts the paper's
quantitative claims about InceptionV3 (degree distribution, per-vertex
configuration counts, dependent-set sizes under both orderings).
"""

import pytest

from repro.analysis import config_count_stats, section_3c_report
from repro.core.sequencer import SequencedGraph, breadth_first_seq, generate_seq
from repro.models import BENCHMARKS, inception_v3


@pytest.mark.parametrize("net", sorted(BENCHMARKS))
def test_generate_seq_time(benchmark, net):
    graph = BENCHMARKS[net]()
    order = benchmark(generate_seq, graph)
    assert sorted(order) == sorted(graph.node_names)


def test_inception_section_3c_claims():
    graph = inception_v3()
    rep = section_3c_report(graph, ps=(8, 64))
    # "mostly sparse with a few high degree nodes": 12 dense vertices.
    assert rep["nodes_degree_ge_5"] == 12
    assert rep["nodes_degree_lt_5"] > 8 * rep["nodes_degree_ge_5"]
    # |D(i) ∪ {v_i}| <= 3 under GENERATESEQ; ~10 under breadth-first.
    assert rep["generateseq_max_dependent"] + 1 <= 3
    assert rep["bf_max_dependent"] >= 8
    # Combination bounds differ by many orders of magnitude.
    assert rep["bf_combinations_bound"] / \
        rep["generateseq_combinations_bound"] > 1e8


def test_inception_config_counts_grow_with_p():
    graph = inception_v3()
    k8 = config_count_stats(graph, 8)["k_max"]
    k64 = config_count_stats(graph, 64)["k_max"]
    assert k8 < k64
    assert k8 >= 10  # paper: 10-30 configs per vertex at p=8


@pytest.mark.parametrize("net", sorted(BENCHMARKS))
def test_path_graphs_need_no_clever_ordering(net):
    """AlexNet and RNNLM are path graphs: both orderings give M=1, which
    is why their BF column matches Ours in Table I."""
    graph = BENCHMARKS[net]()
    gs = SequencedGraph.build(graph, generate_seq(graph)).max_dependent_size
    bf = SequencedGraph.build(graph, breadth_first_seq(graph)).max_dependent_size
    if net in ("alexnet", "rnnlm"):
        assert gs == bf == 1
    else:
        assert gs < bf
