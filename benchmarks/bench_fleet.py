"""Fleet sweep throughput: searches per minute at fleet width.

Drains a grid of journalled alexnet searches through the
`FleetSupervisor` at one and at ``FLEET_WORKERS`` workers (persistent
worker pool, the default) plus a spawn-per-task control at width
``FLEET_WORKERS``, and records searches/minute, scaling efficiency,
worker reuse counts, and per-task seconds in ``BENCH_fleet.json``
(override the path with ``PASE_BENCH_OUT``).

Two classes of assertion:

* **Determinism** — every task must succeed and every width/pool
  combination must merge a byte-identical ``results.jsonl``.
* **Throughput guard** — the width-``FLEET_WORKERS`` persistent pool
  must reach at least ``MIN_SPEEDUP``x the width-1 searches/minute on
  the same grid; measured up to ``ROUNDS`` times (fresh fleet dirs)
  before failing so one scheduler hiccup cannot flake CI.

Needs no pytest-benchmark plugin, so CI can smoke it with the base test
toolchain:

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py
"""

import json
import os

import pytest

from repro.fleet import FleetSupervisor, SweepSpec
from _config import FULL

#: Fleet width for the parallel measurement (the ISSUE floor is 4).
FLEET_WORKERS = 8 if FULL else 4

#: Grid size: models x ps x seeds.
N_SEEDS = 16 if FULL else 6

#: The wide persistent fleet must beat width-1 by at least this factor.
MIN_SPEEDUP = 2.5

#: Fresh measurement rounds before the speedup assert fails.
ROUNDS = 3

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_fleet.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# fleet sweep throughput written to {out}")


def _spec():
    return SweepSpec.from_dict({
        "models": ["alexnet"],
        "ps": [2, 4, 8],
        "methods": ["ours"],
        "seeds": list(range(N_SEEDS)),
    })


def _sweep(fleet_dir, workers, pool="persistent"):
    report = FleetSupervisor(
        _spec(), fleet_dir, workers=workers, pool=pool,
        backoff_base=0.01).run()
    assert report.clean, "benchmark sweep must not degrade"
    return report


def _record(label, rep):
    _RESULTS[label] = {
        "tasks": rep.tasks_total,
        "workers": rep.workers,
        "pool": rep.pool,
        "wall_seconds": round(rep.wall_seconds, 4),
        "searches_per_minute": round(rep.searches_per_minute, 2),
        "seconds_per_task": round(
            rep.wall_seconds / max(rep.tasks_total, 1), 5),
        "workers_spawned": rep.workers_spawned,
        "workers_reused": rep.workers_reused,
    }


def test_fleet_throughput(tmp_path):
    serial = _sweep(tmp_path / "w1", workers=1)
    fleet = _sweep(tmp_path / "wN", workers=FLEET_WORKERS)
    rounds_used = 1
    for attempt in range(1, ROUNDS):
        if fleet.searches_per_minute >= \
                MIN_SPEEDUP * serial.searches_per_minute:
            break
        rounds_used = attempt + 1
        rerun = _sweep(tmp_path / f"w1-r{attempt}", workers=1)
        if rerun.searches_per_minute > serial.searches_per_minute:
            serial = rerun
        rerun = _sweep(tmp_path / f"wN-r{attempt}", workers=FLEET_WORKERS)
        if rerun.searches_per_minute > fleet.searches_per_minute:
            fleet = rerun
    spawn = _sweep(tmp_path / "spawn", workers=FLEET_WORKERS, pool="spawn")

    # Different widths and pool modes, same answers, byte for byte.
    w1 = (tmp_path / "w1" / "results.jsonl").read_bytes()
    assert w1 == (tmp_path / "wN" / "results.jsonl").read_bytes()
    assert w1 == (tmp_path / "spawn" / "results.jsonl").read_bytes()

    # The pool must actually reuse processes across the grid.
    assert fleet.workers_reused > 0, "persistent pool never reused a worker"
    assert serial.workers_spawned <= 2

    _record("workers_1", serial)
    _record(f"workers_{FLEET_WORKERS}", fleet)
    _record(f"workers_{FLEET_WORKERS}_spawn", spawn)
    speedup = (fleet.searches_per_minute /
               max(serial.searches_per_minute, 1e-9))
    _RESULTS["scaling"] = {
        "width": FLEET_WORKERS,
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "spawn_speedup": round(
            spawn.searches_per_minute /
            max(serial.searches_per_minute, 1e-9), 3),
        "rounds_used": float(rounds_used),
    }

    assert speedup >= MIN_SPEEDUP, \
        (f"width-{FLEET_WORKERS} persistent pool reached only "
         f"{speedup:.2f}x width-1 ({fleet.searches_per_minute:.1f} vs "
         f"{serial.searches_per_minute:.1f} searches/min); "
         f"floor is {MIN_SPEEDUP}x")
