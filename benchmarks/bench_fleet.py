"""Fleet sweep throughput: searches per minute at fleet width.

Drains a grid of journalled alexnet searches through the
`FleetSupervisor` at one and at ``FLEET_WORKERS`` workers and records
searches/minute, scaling efficiency, and per-task seconds in
``BENCH_fleet.json`` (override the path with ``PASE_BENCH_OUT``).
Correctness is asserted — every task must succeed and the two widths
must merge byte-identical results — while the throughput numbers are
recorded rather than hard-asserted: wall-clock flakes on loaded CI
machines, determinism never may.

Needs no pytest-benchmark plugin, so CI can smoke it with the base test
toolchain:

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py
"""

import json
import os

import pytest

from repro.fleet import FleetSupervisor, SweepSpec
from _config import FULL

#: Fleet width for the parallel measurement (the ISSUE floor is 4).
FLEET_WORKERS = 8 if FULL else 4

#: Grid size: models x ps x seeds.
N_SEEDS = 16 if FULL else 6

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_fleet.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# fleet sweep throughput written to {out}")


def _sweep(fleet_dir, workers):
    spec = SweepSpec.from_dict({
        "models": ["alexnet"],
        "ps": [2, 4, 8],
        "methods": ["ours"],
        "seeds": list(range(N_SEEDS)),
    })
    report = FleetSupervisor(
        spec, fleet_dir, workers=workers,
        backoff_base=0.01).run()
    assert report.clean, "benchmark sweep must not degrade"
    return report


def test_fleet_throughput(tmp_path):
    serial = _sweep(tmp_path / "w1", workers=1)
    fleet = _sweep(tmp_path / "wN", workers=FLEET_WORKERS)

    # Different widths, same answers, byte for byte.
    assert (tmp_path / "w1" / "results.jsonl").read_bytes() == \
        (tmp_path / "wN" / "results.jsonl").read_bytes()

    for label, rep in (("workers_1", serial),
                       (f"workers_{FLEET_WORKERS}", fleet)):
        _RESULTS[label] = {
            "tasks": rep.tasks_total,
            "workers": rep.workers,
            "wall_seconds": round(rep.wall_seconds, 4),
            "searches_per_minute": round(rep.searches_per_minute, 2),
            "seconds_per_task": round(
                rep.wall_seconds / max(rep.tasks_total, 1), 5),
        }
    _RESULTS["scaling"] = {
        "width": FLEET_WORKERS,
        "speedup": round(
            fleet.searches_per_minute /
            max(serial.searches_per_minute, 1e-9), 3),
    }
