"""Ablation benchmarks for the design choices DESIGN.md calls out.

* ordering: GENERATESEQ vs breadth-first vs random — same optimum
  (Theorem 1), very different DP work;
* configuration granularity: pow2 vs divisors vs all-factor enumeration;
* cost-model terms: which communication term drives which decision;
* DenseNet: the Section V dense-graph limitation.
"""

import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.experiments.ablations import (
    run_config_mode_ablation,
    run_costterm_ablation,
    run_ordering_ablation,
)
from repro.models import alexnet, densenet, inception_v3


@pytest.fixture(scope="module")
def alexnet_graph():
    return alexnet()


class TestOrderingAblation:
    def test_same_cost_different_work(self, benchmark, alexnet_graph):
        out = benchmark.pedantic(
            lambda: run_ordering_ablation(inception_v3(), 8,
                                          memory_budget=1 << 30),
            rounds=1, iterations=1)
        assert not out["generate_seq"]["oom"]
        done = {k: v for k, v in out.items() if not v["oom"]}
        costs = {round(v["cost"], 6) for v in done.values()}
        assert len(costs) == 1  # Theorem 1
        if not out["breadth_first"]["oom"]:
            assert out["generate_seq"]["cells"] <= \
                out["breadth_first"]["cells"]

    def test_breadth_first_ooms_under_tight_budget(self):
        out = run_ordering_ablation(inception_v3(), 8,
                                    memory_budget=1 << 24)
        assert not out["generate_seq"]["oom"]
        assert out["breadth_first"]["oom"]


class TestConfigModeAblation:
    def test_granularity_tradeoff(self, benchmark, alexnet_graph):
        out = benchmark.pedantic(
            lambda: run_config_mode_ablation(alexnet_graph, 8),
            rounds=1, iterations=1)
        assert out["all"]["k_max"] >= out["divisors"]["k_max"] >= \
            out["pow2"]["k_max"]
        # Richer space can only help the optimum...
        assert out["all"]["cost"] <= out["pow2"]["cost"] + 1e-9
        # ...at more DP work.
        assert out["all"]["cells"] >= out["pow2"]["cells"]

    def test_pow2_near_optimal(self, alexnet_graph):
        """The default pow2 space gives up almost nothing on AlexNet."""
        out = run_config_mode_ablation(alexnet_graph, 8)
        assert out["pow2"]["cost"] <= 1.1 * out["all"]["cost"]


class TestCostTermAblation:
    def test_gradient_sync_drives_hybrid_choice(self, benchmark,
                                                alexnet_graph):
        out = benchmark.pedantic(
            lambda: run_costterm_ablation(alexnet_graph, 8),
            rounds=1, iterations=1)
        # Without the gradient-sync term the searcher under-estimates data
        # parallelism's cost; rescored under the full model its choice is
        # no better (usually worse) than the full search's.
        assert out["no_grad_sync"]["true_cost"] >= \
            out["full"]["true_cost"] - 1e-9

    def test_ablated_strategies_differ(self, alexnet_graph):
        out = run_costterm_ablation(alexnet_graph, 8)
        full = out["full"]["strategy"]
        nogs = out["no_grad_sync"]["strategy"]
        assert full.assignment != nogs.assignment


class TestDenseNetLimitation:
    @staticmethod
    def _run(layers, budget=4 << 30):
        g = densenet(block_layers=layers)
        space = ConfigSpace.build(g, 4)
        tables = CostModel(GTX1080TI).build_tables(g, space)
        return find_best_strategy(g, space, tables, memory_budget=budget)

    def test_dense_graph_dp_cost_grows_fast(self, benchmark):
        """Section V: dense graphs defeat every ordering — DP work grows
        steeply with block depth while sparse-graph work stays flat."""
        small = self._run(3)
        big = benchmark.pedantic(lambda: self._run(4), rounds=1,
                                 iterations=1)
        assert big.stats["max_dependent"] > small.stats["max_dependent"]
        assert big.stats["cells"] > 5 * small.stats["cells"]

    def test_deep_dense_block_exhausts_any_ordering(self):
        """A 6-layer dense block already needs multi-GiB DP tables even at
        p=4 — the paper's acknowledged limitation, as a hard failure."""
        from repro.core.exceptions import SearchResourceError
        with pytest.raises(SearchResourceError):
            self._run(6)
