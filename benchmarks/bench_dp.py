"""DP search: plain FINDBESTSTRATEGY vs the exact search-space reduction.

For each benchmark network this runs the DP twice — once directly and
once behind :func:`repro.core.reduction.reduce_problem` (config dominance
pruning + linear-chain contraction) — and records wall time plus the
number of DP table cells each variant evaluates.  The reduction is exact
by construction, so the test asserts the two runs recover strategies of
*bit-identical* normalized cost.  Timings land in ``BENCH_dp.json``
(override the path with ``PASE_BENCH_OUT``).

Like ``bench_tables.py`` this needs no pytest-benchmark plugin, so CI can
smoke it with the base test toolchain:

    PYTHONPATH=src python -m pytest benchmarks/bench_dp.py
"""

import json
import os
import time

import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.models import BENCHMARKS
from _config import FULL

NETWORKS = ("alexnet", "inception_v3", "rnnlm", "transformer")
P = 32 if FULL else 16

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_dp.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# DP search timings written to {out}")


@pytest.mark.parametrize("net", NETWORKS)
def test_dp_plain_vs_reduced(net):
    graph = BENCHMARKS[net]()
    space = ConfigSpace.build(graph, P, mode="pow2")
    tables = CostModel(GTX1080TI).build_tables(graph, space)

    t0 = time.perf_counter()
    plain = find_best_strategy(graph, space, tables)
    t_plain = time.perf_counter() - t0

    t0 = time.perf_counter()
    red = find_best_strategy(graph, space, tables, reduce=True)
    t_red = time.perf_counter() - t0

    # Exactness: identical optimal cost, bit for bit, when both optima
    # are evaluated through the same normalized oracle.
    assert plain.strategy.cost(tables) == red.strategy.cost(tables), \
        f"{net}: reduced DP lost the optimum"
    red.strategy.validate(graph, P)

    cells_plain = plain.stats["cells"]
    cells_red = red.stats["cells"]
    assert cells_red <= cells_plain, f"{net}: reduction grew the DP"

    _RESULTS[net] = {
        "p": float(P),
        "plain_seconds": t_plain,
        "plain_cells": cells_plain,
        "reduced_seconds": t_red,
        "reduced_cells": cells_red,
        "reduction_seconds": red.stats["reduction_seconds"],
        "vertices_removed": red.stats["reduction_vertices_removed"],
        "configs_removed": red.stats["reduction_configs_removed"],
        "cell_reduction_pct": (100.0 * (1.0 - cells_red / cells_plain)
                               if cells_plain else 100.0),
    }


def test_cell_reduction_meets_floor():
    """>=30% fewer DP cells on at least two networks (acceptance bar)."""
    assert len(_RESULTS) == len(NETWORKS), "run the full parametrize first"
    hits = [net for net, r in _RESULTS.items()
            if r["cell_reduction_pct"] >= 30.0]
    assert len(hits) >= 2, f"only {hits} cleared the 30% cell-reduction bar"
