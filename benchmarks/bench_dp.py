"""DP search perf guard: plain FINDBESTSTRATEGY vs the reduced path.

For each benchmark network and device count this runs the DP twice —
once directly and once through ``reduce=True`` (the production "auto"
mode: config dominance pruning + linear-chain contraction, auto-bypassed
when the predicted plain-DP work is below the bypass ratio) — and
records wall time plus the number of DP table cells each variant
evaluates.  The reduction is exact by construction, so the test asserts
the two runs recover strategies of *bit-identical* normalized cost.

Timing protocol (like ``bench_obs.py``): best-of-``BEST_OF`` with the
two variants interleaved to decorrelate machine noise, and up to
``ROUNDS`` fresh measurement rounds before a timing assert fails so one
scheduler hiccup cannot flake CI.  Rows whose warm pass exceeds
``SLOW_SECONDS`` (the p=64 giants) are measured once per round instead.
The perf guard itself:

* rows where the reduction **ran** must be strictly faster than the
  plain DP (``reduced_seconds < plain_seconds``);
* rows where it was **bypassed** are the plain DP plus a cheap
  closed-form predictor, so they must tie within ``BYPASS_TOLERANCE``.

Timings land in ``BENCH_dp.json`` (override the path with
``PASE_BENCH_OUT``); ``reduced_seconds`` *includes* the reduction phase
(``reduction_seconds``) — it is the end-to-end cost of asking for the
reduced path.  The device grid comes from ``PASE_BENCH_DP_PS``
(comma-separated, default ``16,64``); CI smokes ``16`` only.

Like ``bench_tables.py`` this needs no pytest-benchmark plugin, so CI can
smoke it with the base test toolchain:

    PYTHONPATH=src python -m pytest benchmarks/bench_dp.py
"""

import json
import os
import time

import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.models import BENCHMARKS

NETWORKS = ("alexnet", "inception_v3", "rnnlm", "transformer")

#: Device counts exercised; CI pins "16" for the perf-guard smoke, the
#: default grid matches the paper-scale acceptance sweep.
PS = tuple(int(tok) for tok in
           os.environ.get("PASE_BENCH_DP_PS", "16,64").split(","))

BEST_OF = 5
ROUNDS = 3
SLOW_SECONDS = 5.0
BYPASS_TOLERANCE = 1.10
#: Absolute slack for bypassed rows: the bypass predictor costs a fixed
#: few dozen microseconds, which dwarfs 10% of a sub-millisecond DP.
BYPASS_SLACK_SECONDS = 0.005


def _bypass_ok(t_red, t_plain):
    return t_red <= t_plain * BYPASS_TOLERANCE + BYPASS_SLACK_SECONDS

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_dp.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# DP search timings written to {out}")


def _interleaved(run_plain, run_red, reps):
    """Best-of-``reps`` for both runners, alternated so drift hits both.

    Returns the result object of each runner's *best-timed* rep, so the
    recorded stats (e.g. ``reduction_seconds``) are consistent with the
    reported wall time."""
    t_plain = t_red = float("inf")
    plain = red = None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run_plain()
        dt = time.perf_counter() - t0
        if dt < t_plain:
            t_plain, plain = dt, res
        t0 = time.perf_counter()
        res = run_red()
        dt = time.perf_counter() - t0
        if dt < t_red:
            t_red, red = dt, res
    return t_plain, plain, t_red, red


@pytest.mark.parametrize("p", PS)
@pytest.mark.parametrize("net", NETWORKS)
def test_dp_plain_vs_reduced(net, p):
    graph = BENCHMARKS[net]()
    space = ConfigSpace.build(graph, p, mode="pow2")
    tables = CostModel(GTX1080TI).build_tables(graph, space)

    def run_plain():
        return find_best_strategy(graph, space, tables)

    def run_red():
        return find_best_strategy(graph, space, tables, reduce=True)

    # Warm pass: populates the kernel workspaces and page cache, and
    # doubles as rep-count calibration so the p=64 giants are not run
    # five times over.
    t0 = time.perf_counter()
    plain = run_plain()
    t_plain = time.perf_counter() - t0
    t0 = time.perf_counter()
    red = run_red()
    t_red = time.perf_counter() - t0
    reps = BEST_OF if t_plain + t_red < SLOW_SECONDS else 1

    bypassed = bool(red.stats.get("reduction_bypassed"))
    rounds_used = 0
    for attempt in range(ROUNDS):
        rounds_used = attempt + 1
        tp, p_res, tr, r_res = _interleaved(run_plain, run_red, reps)
        if tp < t_plain:
            t_plain, plain = tp, p_res
        if tr < t_red:
            t_red, red = tr, r_res
        ok = _bypass_ok(t_red, t_plain) if bypassed else (t_red < t_plain)
        if ok:
            break

    # Exactness: identical optimal cost, bit for bit, when both optima
    # are evaluated through the same normalized oracle.
    assert plain.strategy.cost(tables) == red.strategy.cost(tables), \
        f"{net} p={p}: reduced DP lost the optimum"
    red.strategy.validate(graph, p)

    cells_plain = plain.stats["cells"]
    cells_red = red.stats["cells"]
    assert cells_red <= cells_plain, f"{net} p={p}: reduction grew the DP"

    _RESULTS[f"{net}_p{p}"] = {
        "p": float(p),
        "plain_seconds": t_plain,
        "plain_cells": cells_plain,
        "reduced_seconds": t_red,  # includes reduction_seconds
        "reduced_cells": cells_red,
        "reduction_seconds": red.stats.get("reduction_seconds", 0.0),
        "reduction_bypassed": red.stats.get("reduction_bypassed", 0.0),
        "vertices_removed": red.stats.get("reduction_vertices_removed", 0.0),
        "configs_removed": red.stats.get("reduction_configs_removed", 0.0),
        "cell_reduction_pct": (100.0 * (1.0 - cells_red / cells_plain)
                               if cells_plain else 100.0),
        "rounds_used": float(rounds_used),
    }

    # The perf guard: asking for the reduced path must never cost wall
    # clock — strictly faster where the reduction runs, a statistical
    # tie where the auto-bypass fell back to the plain DP.
    if bypassed:
        assert _bypass_ok(t_red, t_plain), \
            (f"{net} p={p}: bypassed reduced path {t_red:.4f}s not within "
             f"{BYPASS_TOLERANCE:.2f}x (+{BYPASS_SLACK_SECONDS}s) of plain "
             f"{t_plain:.4f}s")
    else:
        assert t_red < t_plain, \
            (f"{net} p={p}: reduced path {t_red:.4f}s slower than plain "
             f"{t_plain:.4f}s")


def test_reduction_effective_where_it_runs():
    """The auto-bypass must not go degenerate, and where the reduction
    does run it must still clear the 30% cell-reduction floor."""
    assert len(_RESULTS) == len(NETWORKS) * len(PS), \
        "run the full parametrize first"
    ran = [key for key, r in _RESULTS.items() if not r["reduction_bypassed"]]
    assert ran, "auto-bypass skipped the reduction on every row"
    weak = [key for key in ran
            if _RESULTS[key]["cell_reduction_pct"] < 30.0]
    assert not weak, f"{weak} ran the reduction but removed <30% of DP cells"
