"""Pytest hooks for the benchmark suite (see _config for knobs)."""
