"""Shared helpers for the benchmark suite.

Benchmarks mirror the paper's evaluation artifacts:

* ``bench_table1.py``  — strategy-search time (Table I)
* ``bench_table2.py``  — best strategies at scale (Table II)
* ``bench_figure6.py`` — simulated throughput speedups (Fig. 6a/6b)
* ``bench_graphstats.py`` — ordering statistics (Fig. 5 / Section III-C)
* ``bench_ablations.py`` — design-choice ablations

Device counts default to CI-sized sweeps; set ``PASE_BENCH_FULL=1`` to run
the paper's full p = 4..64 grid (slow: tens of minutes).
"""

import os

import pytest

FULL = bool(int(os.environ.get("PASE_BENCH_FULL", "0")))

#: Device counts exercised by the timed benchmarks.
BENCH_PS = (4, 8, 16, 32, 64) if FULL else (4, 8)

#: Device count for the Table II strategy-structure benchmark.
TABLE2_P = 32 if FULL else 16


@pytest.fixture(scope="session")
def bench_ps():
    return BENCH_PS
