"""Frontier-DP guard: Pareto search vs the scalar DP it generalizes.

For each benchmark network this runs the DP twice at each device count —
once as the plain scalar search and once with ``objective="frontier"``
(eps-coarsened on the two big networks, where the exact frontier DP
takes minutes) — and asserts the multi-objective contract:

* the frontier's first point recovers the scalar optimum at
  *bit-identical* cost (eps coarsening never touches the min-cost
  point, so this holds for the coarsened rows too);
* the frontier is sorted ascending by cost with strictly decreasing
  peak memory — i.e. actually non-dominated;
* exact rows expose a genuine trade-off curve (more than one point);
* carrying the frontier costs at most ``OVERHEAD_FACTOR``x the scalar
  DP (plus ``SLACK_SECONDS`` absolute, which dominates on the
  sub-10ms networks).  Measured at p=16: ~35x on alexnet (78 exact
  points) and ~70x on inception/transformer (eps=10), so the 150x
  ceiling leaves ~2x headroom for machine drift.

Frontier sizes and timings land in ``BENCH_frontier.json`` (override
the path with ``PASE_BENCH_OUT``).  The device grid comes from
``PASE_BENCH_FRONTIER_PS`` (comma-separated, default ``16``).

Like ``bench_dp.py`` this needs no pytest-benchmark plugin, so CI can
smoke it with the base test toolchain:

    PYTHONPATH=src python -m pytest benchmarks/bench_frontier.py
"""

import json
import os
import time

import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.models import BENCHMARKS

#: (network, eps) rows.  eps=0.0 is the exact frontier; the two big
#: networks use geometric memory-bucket coarsening to stay CI-sized
#: (exact inception at p=16 runs for minutes, transformer for tens of
#: minutes) — coarsening preserves the min-cost point exactly, so the
#: bit-identity assert below is unconditional.
ROWS = (
    ("alexnet", 0.0),
    ("rnnlm", 0.0),
    ("inception_v3", 10.0),
    ("transformer", 10.0),
)

PS = tuple(int(tok) for tok in
           os.environ.get("PASE_BENCH_FRONTIER_PS", "16").split(","))

#: The documented overhead bound: frontier DP wall time must stay
#: within this factor of the scalar DP on the same tables.
OVERHEAD_FACTOR = 150.0
#: Absolute slack so the bound is meaningful on networks whose scalar
#: DP finishes in a few milliseconds.
SLACK_SECONDS = 2.0
#: Re-measure rounds before a timing assert fails (machine noise).
ROUNDS = 3

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_frontier.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# frontier timings written to {out}")


@pytest.mark.parametrize("p", PS)
@pytest.mark.parametrize("net,eps", ROWS)
def test_frontier_vs_scalar(net, eps, p):
    graph = BENCHMARKS[net]()
    space = ConfigSpace.build(graph, p, mode="pow2")
    tables = CostModel(GTX1080TI).build_tables(graph, space)
    objective = "frontier" if eps == 0.0 else f"frontier:eps={eps:g}"

    def run_scalar():
        return find_best_strategy(graph, space, tables)

    def run_frontier():
        return find_best_strategy(graph, space, tables, objective=objective)

    # Warm pass primes kernel workspaces; the frontier run is measured
    # once per round (the big rows run for tens of seconds), the scalar
    # denominator best-of-3 so a fluke-slow scalar cannot mask a real
    # frontier regression.
    t_scalar, scalar = float("inf"), None
    for _ in range(3):
        t0 = time.perf_counter()
        res = run_scalar()
        dt = time.perf_counter() - t0
        if dt < t_scalar:
            t_scalar, scalar = dt, res

    t_front, front = float("inf"), None
    rounds_used = 0
    for attempt in range(ROUNDS):
        rounds_used = attempt + 1
        t0 = time.perf_counter()
        res = run_frontier()
        dt = time.perf_counter() - t0
        if dt < t_front:
            t_front, front = dt, res
        if t_front <= OVERHEAD_FACTOR * t_scalar + SLACK_SECONDS:
            break

    frontier = front.frontier
    # Bit-identity: the frontier's min-cost point IS the scalar optimum.
    # Exact `==`, not approx — same tables, same association order.
    assert frontier[0].cost == scalar.cost, \
        f"{net} p={p}: frontier lost the scalar optimum"
    assert front.cost == frontier[0].cost

    # Non-dominance: ascending cost, strictly decreasing peak memory.
    for a, b in zip(frontier, frontier[1:]):
        assert a.cost <= b.cost, f"{net} p={p}: frontier not cost-sorted"
        assert a.peak_bytes > b.peak_bytes, \
            f"{net} p={p}: dominated point survived"
    for pt in frontier:
        pt.strategy.validate(graph, p)

    # Exact rows must expose an actual cost/memory trade-off curve.
    if eps == 0.0:
        assert len(frontier) > 1, \
            f"{net} p={p}: exact frontier collapsed to a single point"

    _RESULTS[f"{net}_p{p}"] = {
        "p": float(p),
        "eps": eps,
        "points": float(len(frontier)),
        "scalar_seconds": t_scalar,
        "frontier_seconds": t_front,
        "overhead_x": t_front / t_scalar if t_scalar else float("inf"),
        "min_cost": frontier[0].cost,
        "max_cost": frontier[-1].cost,
        "peak_bytes_max": frontier[0].peak_bytes,
        "peak_bytes_min": frontier[-1].peak_bytes,
        "rounds_used": float(rounds_used),
    }

    assert t_front <= OVERHEAD_FACTOR * t_scalar + SLACK_SECONDS, \
        (f"{net} p={p}: frontier DP {t_front:.2f}s exceeds "
         f"{OVERHEAD_FACTOR:.0f}x scalar ({t_scalar:.4f}s) "
         f"+ {SLACK_SECONDS:.0f}s")
