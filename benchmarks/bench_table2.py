"""Table II: best strategies for a multi-node system.

Times the full search at the Table II scale and regenerates the
qualitative strategy structure Section IV-C describes (the assertions are
the reproduction; the printed tables match the paper's format).
"""

import pytest

from repro.experiments.common import build_setup, search_with
from repro.experiments.table2 import run_table2, strategy_structure_checks
from _config import TABLE2_P

NETWORKS = ("alexnet", "inception_v3", "rnnlm", "transformer")


@pytest.mark.parametrize("net", NETWORKS)
def test_table2_search(benchmark, net):
    setup = build_setup(net, TABLE2_P)
    result = benchmark.pedantic(
        lambda: search_with(setup, "ours"), rounds=1, iterations=1)
    result.strategy.validate(setup.graph, TABLE2_P)


def test_table2_structure():
    """Section IV-C: the found strategies have the paper's shape."""
    strategies = run_table2(p=TABLE2_P)
    checks = strategy_structure_checks(strategies, p=TABLE2_P)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"structure checks failed: {failed}"


def test_table2_rendering():
    strategies = run_table2(p=TABLE2_P, benchmarks=("rnnlm",))
    setup = build_setup("rnnlm", TABLE2_P)
    table = strategies["rnnlm"].format_table(setup.graph)
    assert "lstm" in table and "lbsde" in table
