"""Cost-table construction perf guard: serial vs auto-selected backend.

For each network this times `CostModel.build_tables` serial and with
``jobs=JOBS`` (auto backend selection: serial/threads/processes from the
measured work cells and result bytes), asserts every variant is
bit-identical to the serial reference, and proves the warm cache hit
never touches the matrix constructors.

Timing protocol (like ``bench_dp.py``): best-of-``BEST_OF`` with the two
variants interleaved to decorrelate machine noise, and up to ``ROUNDS``
fresh measurement rounds before a timing assert fails so one scheduler
hiccup cannot flake CI.  The perf guard itself: wherever the auto rule
selects a *parallel* backend, the parallel build must tie-or-beat the
serial one within ``TOLERANCE`` (10% + 5ms) — a "parallel" path that
loses wall clock is a regression and fails CI.  Rows where auto resolves
to serial (small work, single core) time the resolution overhead instead
and are held to the same tie tolerance.

Timings land in ``BENCH_tables.json`` (override with ``PASE_BENCH_OUT``),
one row per network: ``backend`` records the auto-selected backend by
name, ``*_seconds`` are best-of timings, ``shm_bytes`` the arena size
when the process backend ran.

Unlike the other bench modules this one needs no pytest-benchmark
plugin, so CI can smoke it with the base test toolchain:

    PYTHONPATH=src python -m pytest benchmarks/bench_tables.py
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.machine import GTX1080TI
from repro.core.tablecache import TableCache
from repro.models import BENCHMARKS
from _config import FULL

NETWORKS = ("inception_v3", "transformer")
P = 32 if FULL else 16
#: At least two workers so auto-selection has room even on small CI
#: boxes (it may still resolve to serial on a single core — recorded,
#: and then the guard degenerates to serial-vs-serial).
JOBS = max(2, os.cpu_count() or 1)

BEST_OF = 5
ROUNDS = 3
TOLERANCE = 1.10
#: Absolute slack: backend resolution costs microseconds, which dwarfs
#: 10% of a millisecond-scale build.
SLACK_SECONDS = 0.005

_RESULTS: dict[str, dict[str, object]] = {}


def _guard_ok(t_par, t_serial):
    return t_par <= t_serial * TOLERANCE + SLACK_SECONDS


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_tables.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# table-construction timings written to {out}")


def _identical(a, b) -> bool:
    """Bit-identical cost tables (exact equality, not allclose)."""
    return (set(a.lc) == set(b.lc)
            and set(a.pair_tx) == set(b.pair_tx)
            and all(np.array_equal(a.lc[n], b.lc[n]) for n in a.lc)
            and all(np.array_equal(a.pair_tx[k], b.pair_tx[k])
                    for k in a.pair_tx))


def _interleaved(run_a, run_b, reps):
    """Best-of-``reps`` for both runners, alternated so drift hits both."""
    t_a = t_b = float("inf")
    best_a = best_b = None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run_a()
        dt = time.perf_counter() - t0
        if dt < t_a:
            t_a, best_a = dt, res
        t0 = time.perf_counter()
        res = run_b()
        dt = time.perf_counter() - t0
        if dt < t_b:
            t_b, best_b = dt, res
    return t_a, best_a, t_b, best_b


@pytest.mark.parametrize("net", NETWORKS)
def test_build_perf_guard_and_identity(net, tmp_path, monkeypatch):
    graph = BENCHMARKS[net]()
    space = ConfigSpace.build(graph, P, mode="pow2")
    cm = CostModel(GTX1080TI)
    cache = TableCache(tmp_path / "cache")

    def run_serial():
        return cm.build_tables(graph, space)

    def run_auto():
        return cm.build_tables(graph, space, jobs=JOBS)

    # Warm pass: pages in the model code and gives first-shot timings.
    t0 = time.perf_counter()
    serial = run_serial()
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = run_auto()
    t_par = time.perf_counter() - t0
    backend = par.backend
    assert _identical(serial, par), \
        f"{net}: {backend} tables differ from serial"

    rounds_used = 0
    for attempt in range(ROUNDS):
        rounds_used = attempt + 1
        ts, _, tp, p_res = _interleaved(run_serial, run_auto, BEST_OF)
        if ts < t_serial:
            t_serial = ts
        if tp < t_par:
            t_par, par = tp, p_res
        if _guard_ok(t_par, t_serial):
            break

    # Forced shared-memory process build: identity only (on small boxes
    # the fork cost makes it legitimately slower — that is exactly why
    # auto-selection exists, and the guard above holds *auto* harmless).
    t0 = time.perf_counter()
    forced = cm.build_tables(graph, space, jobs="processes:2")
    t_forced = time.perf_counter() - t0
    assert forced.backend == "processes"
    assert _identical(serial, forced), \
        f"{net}: shared-memory process tables differ from serial"

    t0 = time.perf_counter()
    cold = cm.build_tables(graph, space, cache=cache)
    t_cold = time.perf_counter() - t0
    assert cold.build_stats["cache_hit"] == 0.0

    # A warm hit must come entirely off disk: fail the moment either
    # matrix constructor runs.
    def _boom(*args, **kwargs):
        raise AssertionError("matrix construction ran on a warm cache hit")

    monkeypatch.setattr(CostModel, "layer_cost", _boom)
    monkeypatch.setattr(CostModel, "edge_bytes_matrix", _boom)
    t0 = time.perf_counter()
    warm = cm.build_tables(graph, space, cache=cache)
    t_warm = time.perf_counter() - t0
    monkeypatch.undo()
    assert warm.build_stats["cache_hit"] == 1.0
    assert _identical(serial, warm), "cached tables differ from serial"

    _RESULTS[net] = {
        "p": float(P),
        "work_cells": float(CostModel.table_work_cells(graph, space)),
        "serial_seconds": t_serial,
        "parallel_seconds": t_par,
        "parallel_jobs": par.build_stats["jobs"],
        "backend": backend,
        "shm_bytes": par.build_stats["shm_bytes"],
        "forced_processes_seconds": t_forced,
        "cold_cache_seconds": t_cold,
        "warm_cache_seconds": t_warm,
        "rounds_used": float(rounds_used),
    }

    # The perf guard: auto-selection must never cost wall clock.  When a
    # parallel backend was chosen it has to tie-or-beat serial; when auto
    # resolved to serial the two runs differ only by resolution overhead
    # and the same tolerance applies.
    assert _guard_ok(t_par, t_serial), \
        (f"{net} p={P}: auto-selected backend {backend!r} {t_par:.4f}s "
         f"not within {TOLERANCE:.2f}x (+{SLACK_SECONDS}s) of serial "
         f"{t_serial:.4f}s")
