"""Cost-table construction: serial vs parallel vs warm on-disk cache.

For each network this times `CostModel.build_tables` three ways —
single-process, multi-process (``jobs=0`` = all cores), and from a warm
`TableCache` — asserts the parallel and cached tables are bit-identical
to the serial ones, and proves the warm hit never touches the matrix
constructors.  Timings land in ``BENCH_tables.json`` (override the path
with ``PASE_BENCH_OUT``).

Unlike the other bench modules this one needs no pytest-benchmark
plugin, so CI can smoke it with the base test toolchain:

    PYTHONPATH=src python -m pytest benchmarks/bench_tables.py
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.machine import GTX1080TI
from repro.core.tablecache import TableCache
from repro.models import BENCHMARKS
from _config import FULL

NETWORKS = ("inception_v3", "transformer")
P = 32 if FULL else 16
#: At least two workers so the pool path runs even on single-core CI.
JOBS = max(2, os.cpu_count() or 1)

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_tables.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# table-construction timings written to {out}")


def _identical(a, b) -> bool:
    """Bit-identical cost tables (exact equality, not allclose)."""
    return (set(a.lc) == set(b.lc)
            and set(a.pair_tx) == set(b.pair_tx)
            and all(np.array_equal(a.lc[n], b.lc[n]) for n in a.lc)
            and all(np.array_equal(a.pair_tx[k], b.pair_tx[k])
                    for k in a.pair_tx))


@pytest.mark.parametrize("net", NETWORKS)
def test_build_serial_parallel_cached(net, tmp_path, monkeypatch):
    graph = BENCHMARKS[net]()
    space = ConfigSpace.build(graph, P, mode="pow2")
    cm = CostModel(GTX1080TI)
    cache = TableCache(tmp_path / "cache")

    t0 = time.perf_counter()
    serial = cm.build_tables(graph, space)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = cm.build_tables(graph, space, jobs=JOBS)
    t_par = time.perf_counter() - t0
    assert _identical(serial, par), "parallel tables differ from serial"

    t0 = time.perf_counter()
    cold = cm.build_tables(graph, space, cache=cache)
    t_cold = time.perf_counter() - t0
    assert cold.build_stats["cache_hit"] == 0.0

    # A warm hit must come entirely off disk: fail the moment either
    # matrix constructor runs.
    def _boom(*args, **kwargs):
        raise AssertionError("matrix construction ran on a warm cache hit")

    monkeypatch.setattr(CostModel, "layer_cost", _boom)
    monkeypatch.setattr(CostModel, "edge_bytes_matrix", _boom)
    t0 = time.perf_counter()
    warm = cm.build_tables(graph, space, cache=cache)
    t_warm = time.perf_counter() - t0
    monkeypatch.undo()
    assert warm.build_stats["cache_hit"] == 1.0
    assert _identical(serial, warm), "cached tables differ from serial"

    _RESULTS[net] = {
        "p": float(P),
        "work_cells": float(CostModel.table_work_cells(graph, space)),
        "serial_seconds": t_serial,
        "parallel_seconds": t_par,
        "parallel_jobs": par.build_stats["jobs"],
        "cold_cache_seconds": t_cold,
        "warm_cache_seconds": t_warm,
    }
