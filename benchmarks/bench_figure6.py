"""Figure 6: simulated training throughput of searched strategies.

For every (machine, network, p) cell, times the cluster simulation of the
PaSE strategy and asserts the paper's headline orderings against the
data-parallel baseline: the searched strategy never loses materially, the
wins grow with scale, and the low-machine-balance 2080Ti system shows the
larger gaps (Fig. 6b vs 6a).
"""

import pytest

from repro.cluster import simulate_step
from repro.core.machine import GTX1080TI, RTX2080TI
from repro.experiments.common import build_setup, search_with
from _config import BENCH_PS, FULL

NETWORKS = ("alexnet", "inception_v3", "rnnlm", "transformer")
MACHINES = {m.name: m for m in (GTX1080TI, RTX2080TI)}


def speedup_over_dp(net, p, machine, method="ours"):
    setup = build_setup(net, p, machine=machine)
    strat = search_with(setup, method).strategy
    dp = search_with(setup, "data_parallel").strategy
    ours = simulate_step(setup.graph, strat, machine, p)
    base = simulate_step(setup.graph, dp, machine, p)
    return ours.throughput / base.throughput


@pytest.mark.parametrize("mname", list(MACHINES))
@pytest.mark.parametrize("p", BENCH_PS)
@pytest.mark.parametrize("net", NETWORKS)
def test_simulated_step(benchmark, net, p, mname):
    machine = MACHINES[mname]
    setup = build_setup(net, p, machine=machine)
    strat = search_with(setup, "ours").strategy
    report = benchmark.pedantic(
        lambda: simulate_step(setup.graph, strat, machine, p),
        rounds=1, iterations=1)
    assert report.throughput > 0


@pytest.mark.parametrize("mname", list(MACHINES))
@pytest.mark.parametrize("net", NETWORKS)
def test_never_materially_worse_than_dp(net, mname):
    """Fig. 6 floor: the searched strategy tracks or beats data
    parallelism (small-p cells can tie or dip slightly within simulator
    noise — the analytic oracle ignores overlap, Section II)."""
    s = speedup_over_dp(net, max(BENCH_PS), MACHINES[mname])
    assert s > 0.8


@pytest.mark.parametrize("net", ("alexnet", "rnnlm"))
def test_low_balance_machine_wins_bigger(net):
    """Fig. 6b vs 6a: speedups are larger on the 2080Ti profile."""
    p = max(BENCH_PS)
    assert speedup_over_dp(net, p, RTX2080TI) > \
        speedup_over_dp(net, p, GTX1080TI)


@pytest.mark.parametrize("net", ("alexnet", "rnnlm"))
def test_speedup_grows_with_scale(net):
    """Fig. 6 trend: more devices widen the gap over data parallelism."""
    lo, hi = min(BENCH_PS), max(BENCH_PS)
    assert speedup_over_dp(net, hi, RTX2080TI) >= \
        speedup_over_dp(net, lo, RTX2080TI)


@pytest.mark.skipif(not FULL, reason="paper-scale headline needs p>=16 "
                    "(set PASE_BENCH_FULL=1)")
def test_headline_factors():
    """Paper: up to ~1.85x over DP on 1080Ti and ~4x on 2080Ti."""
    best_1080 = max(speedup_over_dp(n, 16, GTX1080TI)
                    for n in ("alexnet", "rnnlm"))
    best_2080 = max(speedup_over_dp(n, 16, RTX2080TI)
                    for n in ("alexnet", "rnnlm"))
    assert best_1080 >= 1.5
    assert best_2080 >= 3.0
