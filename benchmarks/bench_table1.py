"""Table I: time to find parallelization strategies.

Each benchmark times one (network, p, searcher) cell of the paper's
Table I.  The breadth-first cells that the paper reports as OOM raise
`SearchResourceError` here; they are asserted (fast) rather than timed.
"""

import pytest

from repro.core.exceptions import SearchResourceError
from repro.experiments.common import build_setup, search_with
from _config import BENCH_PS

NETWORKS = ("alexnet", "inception_v3", "rnnlm", "transformer")

#: (network, searcher) cells that complete; BF on the branchy graphs OOMs.
SEARCH_CELLS = [
    (net, method)
    for net in NETWORKS
    for method in ("bf", "mcmc", "ours")
    if not (method == "bf" and net in ("inception_v3", "transformer"))
]


@pytest.mark.parametrize("p", BENCH_PS)
@pytest.mark.parametrize("net,method", SEARCH_CELLS,
                         ids=[f"{n}-{m}" for n, m in SEARCH_CELLS])
def test_search_time(benchmark, net, method, p):
    setup = build_setup(net, p)
    result = benchmark.pedantic(
        lambda: search_with(setup, method), rounds=1, iterations=1)
    assert result.cost > 0
    # Table I consistency: on path graphs BF finds the same optimum.
    if method == "bf":
        assert result.cost == pytest.approx(search_with(setup, "ours").cost)


@pytest.mark.parametrize("p", BENCH_PS)
@pytest.mark.parametrize("net", ("inception_v3", "transformer"))
def test_breadth_first_oom(benchmark, net, p):
    """The paper's OOM cells: BF DP exceeds the table budget."""
    setup = build_setup(net, p)

    def run():
        with pytest.raises(SearchResourceError):
            search_with(setup, "bf")

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("net", NETWORKS)
def test_ours_faster_than_mcmc_at_p8(net):
    """Table I's headline ordering: the DP beats the MCMC comparator's
    search time on every network (at the shared p=8 point)."""
    setup = build_setup(net, 8)
    ours = search_with(setup, "ours")
    mcmc = search_with(setup, "mcmc")
    assert ours.elapsed < mcmc.elapsed
    assert ours.cost <= mcmc.cost + 1e-9
