"""Hardened-runtime overhead: plain search vs journalled + checkpointed.

Times `find_best_strategy` over raw tables against the same problem run
through `repro.runtime.execute_search` with a `RunBudget`, cooperative
checkpoints, and a crash-safe `SearchJournal`, asserting the hardened
path returns the bit-identical cost and strategy.  The journal/checkpoint
overhead lands in ``BENCH_runtime.json`` (override the path with
``PASE_BENCH_OUT``); the design target is < 2% of end-to-end runtime,
recorded rather than hard-asserted — wall-clock ratios flake on loaded
CI machines, correctness never may.

Needs no pytest-benchmark plugin, so CI can smoke it with the base test
toolchain:

    PYTHONPATH=src python -m pytest benchmarks/bench_runtime.py
"""

import json
import os
import time

import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.models import BENCHMARKS
from repro.runtime import RunBudget, SearchJournal, execute_search
from _config import FULL

NETWORKS = ("rnnlm", "transformer")
P = 32 if FULL else 16

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_runtime.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# hardened-runtime overhead written to {out}")


@pytest.mark.parametrize("net", NETWORKS)
def test_hardened_overhead(net, tmp_path):
    graph = BENCHMARKS[net]()
    space = ConfigSpace.build(graph, P, mode="pow2")
    cm = CostModel(GTX1080TI)

    # Plain path: tables + DP with no budget, checkpoints, or journal.
    t0 = time.perf_counter()
    tables = cm.build_tables(graph, space)
    plain = find_best_strategy(graph, space, tables)
    t_plain = time.perf_counter() - t0

    # Hardened path: deadline-bounded, checkpointed, journalled.
    t0 = time.perf_counter()
    out = execute_search(graph, space, GTX1080TI,
                         budget=RunBudget(deadline=3600.0),
                         journal=SearchJournal(tmp_path / "journal"))
    t_hard = time.perf_counter() - t0

    assert out.result.cost == plain.cost, \
        "hardened runtime changed the optimal cost"
    assert out.result.strategy.assignment == plain.strategy.assignment, \
        "hardened runtime changed the optimal strategy"
    assert out.report.clean

    # Resume replay: everything comes back from the journal.
    t0 = time.perf_counter()
    replay = execute_search(graph, space, GTX1080TI,
                            journal=SearchJournal(tmp_path / "journal"),
                            resume=True)
    t_replay = time.perf_counter() - t0
    assert replay.result.cost == plain.cost

    _RESULTS[net] = {
        "p": float(P),
        "plain_seconds": t_plain,
        "hardened_seconds": t_hard,
        "replay_seconds": t_replay,
        "overhead_seconds": t_hard - t_plain,
        "overhead_ratio": (t_hard - t_plain) / t_plain if t_plain else 0.0,
        "overhead_target_ratio": 0.02,
    }
