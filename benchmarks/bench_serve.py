"""Serve daemon latency and scaling: warm-cache p50, fleet throughput.

Boots real `StrategyServer` instances on loopback and measures two
service-level objectives into ``BENCH_serve.json`` (override the path
with ``PASE_BENCH_OUT``):

* **Warm-cache latency** — after one cold search, repeated identical
  requests must come straight from the persistent result cache; the
  HTTP round-trip p50 must stay under ``MAX_CACHED_P50_MS``.
* **Worker scaling** — a burst of distinct problems (no coalescing, no
  cache hits) through a ``SERVE_WORKERS``-worker server must reach at
  least ``MIN_SPEEDUP``x the single-worker throughput; measured up to
  ``ROUNDS`` times (fresh servers) before failing so one scheduler
  hiccup cannot flake CI.

Needs no pytest-benchmark plugin, so CI can smoke it with the base test
toolchain:

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py
"""

import json
import os
import statistics
import threading
import time
import urllib.request

import pytest

from repro.obs.metrics import Metrics
from repro.serve.admission import AdmissionController
from repro.serve.engine import SearchEngine
from repro.serve.server import StrategyServer
from _config import FULL

#: Worker count for the parallel measurement (the ISSUE floor is 4).
SERVE_WORKERS = 4

#: Distinct problems per throughput burst (all cache/coalesce misses).
N_TASKS = 48 if FULL else 24

#: Cached responses must answer under this round-trip p50.
MAX_CACHED_P50_MS = 50.0

#: The 4-worker server must beat 1 worker by at least this factor.
MIN_SPEEDUP = 2.5

#: Fresh measurement rounds before the speedup assert fails.
ROUNDS = 3

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_serve.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# serve latency/scaling written to {out}")


def _start(state_dir, workers):
    metrics = Metrics()
    engine = SearchEngine(state_dir, workers=workers, metrics=metrics)
    server = StrategyServer(
        ("127.0.0.1", 0), engine=engine,
        admission=AdmissionController(max(2 * N_TASKS, 16), workers=workers),
        metrics=metrics)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def _post(port, doc):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/search",
        data=json.dumps(doc).encode())
    with urllib.request.urlopen(req, timeout=120) as resp:
        return resp.status, json.loads(resp.read())


def _burst(port, docs):
    """Fire one request per doc concurrently; return wall seconds."""
    statuses = [None] * len(docs)

    def one(i):
        statuses[i], _ = _post(port, docs[i])

    threads = [threading.Thread(target=one, args=(i,))
               for i in range(len(docs))]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    assert statuses == [200] * len(docs), "benchmark burst must not degrade"
    return wall


def _throughput(tmp_path, label, workers):
    # Short searches (rnnlm/p=8 is a few ms) keep the measurement about
    # the service itself: width-1 pays the full dispatch/reap latency
    # per task, width-N overlaps it across in-flight requests — the same
    # effect that dominates real bursts of mixed-size problems.
    docs = [{"model": "rnnlm", "p": 8, "seed": s} for s in range(N_TASKS)]
    warmup = [{"model": "rnnlm", "p": 8, "seed": 10_000 + s}
              for s in range(workers)]
    server = _start(tmp_path / label, workers)
    try:
        # One distinct problem per worker first, so process spawn and
        # graph warm-up are paid outside the timed window.
        _burst(server.server_port, warmup)
        wall = _burst(server.server_port, docs)
    finally:
        server.close()
    per_minute = 60.0 * N_TASKS / wall
    _RESULTS[label] = {
        "tasks": N_TASKS,
        "workers": workers,
        "wall_seconds": round(wall, 4),
        "searches_per_minute": round(per_minute, 2),
    }
    return per_minute


def test_warm_cache_p50(tmp_path):
    doc = {"model": "alexnet", "p": 8}
    server = _start(tmp_path / "cache", workers=2)
    try:
        port = server.server_port
        _, cold = _post(port, doc)
        assert not cold["served"]["cached"]
        samples = []
        for _ in range(50):
            start = time.perf_counter()
            _, warm = _post(port, doc)
            samples.append(1e3 * (time.perf_counter() - start))
            assert warm["served"]["cached"]
            assert warm["record"] == cold["record"]
    finally:
        server.close()
    p50 = statistics.median(samples)
    _RESULTS["warm_cache"] = {
        "samples": len(samples),
        "p50_ms": round(p50, 3),
        "p95_ms": round(sorted(samples)[int(0.95 * len(samples))], 3),
        "max_p50_ms": MAX_CACHED_P50_MS,
    }
    assert p50 < MAX_CACHED_P50_MS, \
        (f"warm-cache p50 {p50:.1f}ms over the {MAX_CACHED_P50_MS}ms "
         f"budget — cached responses are doing work")


def test_worker_scaling(tmp_path):
    # Serial and fleet runs are measured as matched pairs per round so
    # scheduler drift between rounds cannot skew the ratio.
    speedup = 0.0
    rounds_used = 0
    for attempt in range(ROUNDS):
        rounds_used = attempt + 1
        serial = _throughput(tmp_path / f"r{attempt}", "workers_1",
                             workers=1)
        fleet = _throughput(tmp_path / f"r{attempt}",
                            f"workers_{SERVE_WORKERS}",
                            workers=SERVE_WORKERS)
        speedup = max(speedup, fleet / max(serial, 1e-9))
        if speedup >= MIN_SPEEDUP:
            break
    _RESULTS["scaling"] = {
        "width": SERVE_WORKERS,
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "rounds_used": float(rounds_used),
    }
    assert speedup >= MIN_SPEEDUP, \
        (f"{SERVE_WORKERS}-worker server reached only {speedup:.2f}x the "
         f"1-worker throughput ({fleet:.1f} vs {serial:.1f} "
         f"searches/min); floor is {MIN_SPEEDUP}x")
