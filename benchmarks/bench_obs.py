"""Observability overhead: the no-op hooks must not tax the hot path.

Two claims, both asserted (unlike the wall-clock ratios in
``bench_runtime.py``, these compare the *same* in-process code path and
are stable enough to pin):

1. **Bit-identity** — running the DP with tracing/metrics enabled
   returns the exact cost and strategy of the default (disabled) run.
2. **Overhead** — full observability (in-memory tracer + metrics, spans
   on every DP vertex) adds < 2% to the DP over prebuilt tables.  The
   disabled default is strictly cheaper than enabled, so pinning the
   enabled path pins the no-op path too.  Timings are best-of-5 with
   the two variants interleaved to decorrelate machine noise, and the
   assert gets up to ``ROUNDS`` fresh measurement rounds before failing
   so one scheduler hiccup cannot flake CI.

A third, structural check: a journalled ``execute_search --trace``-style
run at p=16 with reduction must emit a JSONL trace whose span tree nests
tables → reduction rounds → per-vertex DP under a single ``run`` root.

Results land in ``BENCH_obs.json`` (override with ``PASE_BENCH_OUT``).
Needs no pytest-benchmark plugin:

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py
"""

import json
import os
import time

import pytest

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.models import BENCHMARKS
from repro.obs import Metrics, Tracer, activate, read_trace, span_tree
from repro.runtime import RunContext, execute_search
from _config import FULL

NETWORKS = ("alexnet", "transformer")
P = 32 if FULL else 16
BEST_OF = 5
ROUNDS = 3
OVERHEAD_TARGET = 0.02

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS:
        out = os.environ.get("PASE_BENCH_OUT", "BENCH_obs.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        print(f"\n# observability overhead written to {out}")


def _best_of(fn, reps=BEST_OF):
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.parametrize("net", NETWORKS)
def test_overhead_and_bit_identity(net):
    graph = BENCHMARKS[net]()
    space = ConfigSpace.build(graph, P, mode="pow2")
    tables = CostModel(GTX1080TI).build_tables(graph, space)

    def run_off():
        return find_best_strategy(graph, space, tables)

    def run_on():
        with activate(tracer=Tracer(), metrics=Metrics()):
            return find_best_strategy(graph, space, tables)

    run_off(), run_on()  # warm caches before timing

    ratio = float("inf")
    for attempt in range(ROUNDS):
        # Interleave the variants so drift hits both equally.
        t_off, res_off = _best_of(run_off)
        t_on, res_on = _best_of(run_on)
        assert res_on.cost == res_off.cost, \
            "observability changed the optimal cost"
        assert res_on.strategy.assignment == res_off.strategy.assignment, \
            "observability changed the optimal strategy"
        ratio = (t_on - t_off) / t_off
        if ratio < OVERHEAD_TARGET:
            break

    _RESULTS[net] = {
        "p": float(P),
        "dp_seconds_disabled": t_off,
        "dp_seconds_enabled": t_on,
        "overhead_ratio": ratio,
        "overhead_target_ratio": OVERHEAD_TARGET,
        "rounds_used": float(attempt + 1),
    }
    assert ratio < OVERHEAD_TARGET, \
        f"{net}: tracing overhead {ratio:.1%} exceeds {OVERHEAD_TARGET:.0%}"


@pytest.mark.parametrize("net", NETWORKS)
def test_trace_reconstructs_full_span_tree(net, tmp_path):
    graph = BENCHMARKS[net]()
    space = ConfigSpace.build(graph, P, mode="pow2")
    trace_path = tmp_path / f"{net}.trace.jsonl"
    ctx = RunContext(tracer=Tracer(trace_path))
    # reduce="always" pins the reduction spans in the tree — plain
    # reduce=True would auto-bypass the reduction on AlexNet at p=16.
    outcome = execute_search(graph, space, GTX1080TI, reduce="always", ctx=ctx)
    ctx.tracer.close()

    records = read_trace(trace_path)
    assert records[0]["kind"] == "meta"
    (run,) = span_tree(records)  # single root
    assert run["name"] == "run"
    children = {c["name"] for c in run["children"]}
    assert children == {"tables", "search"}

    def collect(rec, into):
        into.setdefault(rec["name"], []).append(rec)
        for child in rec["children"]:
            collect(child, into)

    by_name: dict[str, list] = {}
    collect(run, by_name)
    # tables → build; search → reduction rounds → per-vertex DP.
    assert len(by_name["tables.build"]) == 1
    assert len(by_name["reduction"]) >= 1
    assert len(by_name["reduction.round"]) >= 1
    vertices = int(outcome.result.stats["vertices"])
    if vertices:
        assert by_name["dp"], "no DP span recorded"
        assert len(by_name["dp.vertex"]) == vertices, \
            "one dp.vertex span per solved vertex"
    else:
        # The reduction contracted the whole graph (AlexNet's chain at
        # p=16 does); there is no DP loop, hence no dp span.
        assert "dp" not in by_name
