#!/usr/bin/env python
"""Extensions tour: pipeline stages, memory accounting, and timelines.

1. Compose PipeDream-style stage partitioning with PaSE (the Section VI
   combination): cut VGG-16 into pipeline stages and search each stage.
2. Check the Section II memory claim: the searched strategy's per-device
   footprint vs data parallelism's.
3. Render an ASCII timeline of the simulated step showing gradient-sync /
   compute overlap.

Run:  python examples/pipeline_and_trace.py
"""

from repro.analysis import strategy_memory
from repro.baselines import data_parallel_strategy
from repro.cluster import render_gantt, simulate_step
from repro.core import ConfigSpace, CostModel, GTX1080TI, find_best_strategy
from repro.extensions import pipeline_pase
from repro.models import vgg16

P = 8


def main() -> None:
    graph = vgg16()

    print("== 1. pipeline stages + PaSE per stage ==")
    res = pipeline_pase(graph, P, stages=2)
    for i, (stage, cost) in enumerate(zip(res.stages, res.stage_costs)):
        print(f"  stage {i}: {len(stage):2d} layers, cost {cost:.3e} "
              f"({stage[0]} .. {stage[-1]})")
    print(f"  balance {res.pipeline_efficiency:.1%}, "
          f"{res.devices_per_stage} devices/stage")

    print("\n== 2. per-device memory: searched strategy vs data parallel ==")
    space = ConfigSpace.build(graph, P)
    tables = CostModel(GTX1080TI).build_tables(graph, space)
    ours = find_best_strategy(graph, space, tables).strategy
    dp = data_parallel_strategy(graph, P)
    for label, strat in (("ours", ours), ("data parallel", dp)):
        mem = strategy_memory(graph, strat)
        total = sum(m.total for m in mem.values())
        params = sum(m.params for m in mem.values())
        print(f"  {label:14s} total {total / 2**30:5.2f} GiB/device "
              f"(params+optimizer {params / 2**30:5.2f} GiB)")

    print("\n== 3. simulated step timeline (ours) ==")
    rep = simulate_step(graph, ours, GTX1080TI, P, keep_trace=True)
    print(f"  step {rep.step_time * 1e3:.1f} ms, "
          f"{rep.throughput:,.0f} samples/s")
    print(render_gantt(rep.trace, rep.step_time, width=72,
                       resources=[("gpu", 0), ("gpu", 1), ("tx", 0)]))


if __name__ == "__main__":
    main()
