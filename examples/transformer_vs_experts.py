#!/usr/bin/env python
"""Transformer NMT: PaSE vs data parallelism, Mesh-TensorFlow, and MCMC.

Reproduces the Section IV comparison for the Transformer benchmark on a
chosen device count: search with every method, rank by the shared analytic
oracle, then execute each strategy on the simulated 1080Ti and 2080Ti
clusters (paper Fig. 6a/6b).

Run:  python examples/transformer_vs_experts.py [p]
"""

import sys

import numpy as np

from repro.baselines import (
    MCMCOptions,
    data_parallel_strategy,
    mcmc_search,
    mesh_tf_transformer_expert,
)
from repro.cluster import simulate_step
from repro.core import ConfigSpace, CostModel, GTX1080TI, RTX2080TI, \
    find_best_strategy
from repro.models import transformer


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    graph = transformer(layers=4)

    for machine in (GTX1080TI, RTX2080TI):
        space = ConfigSpace.build(graph, p)
        tables = CostModel(machine).build_tables(graph, space)

        expert = mesh_tf_transformer_expert(graph, p)
        strategies = {
            "data_parallel": data_parallel_strategy(graph, p),
            "mesh_tf_expert": expert,
            "flexflow_mcmc": mcmc_search(
                graph, space, tables, init=expert,
                rng=np.random.default_rng(0),
                options=MCMCOptions(max_iters=20_000)).strategy,
            "pase": find_best_strategy(graph, space, tables).strategy,
        }

        print(f"\n== {machine.name}, p={p} ==")
        base = simulate_step(graph, strategies["data_parallel"], machine, p)
        print(f"{'method':16s} {'analytic cost':>14s} {'samples/s':>10s} "
              f"{'speedup':>8s}")
        for name, strat in strategies.items():
            rep = simulate_step(graph, strat, machine, p)
            print(f"{name:16s} {strat.cost(tables):14.4e} "
                  f"{rep.throughput:10.1f} "
                  f"{rep.throughput / base.throughput:7.2f}x")


if __name__ == "__main__":
    main()
