#!/usr/bin/env python
"""InceptionV3: why vertex ordering matters (paper Sections III-C, IV-A).

Shows the Section III-C phenomenon end to end: InceptionV3's graph is
sparse except for a dozen concat/fan-out vertices; breadth-first ordering
inflates the DP's dependent sets past any reasonable memory budget (the
paper's Table I "OOM" entries) while GENERATESEQ keeps them at <= 2 and
finds the strategy in seconds.

Run:  python examples/inception_strategy.py [p]
"""

import sys

from repro.analysis import section_3c_report
from repro.core import (
    ConfigSpace,
    CostModel,
    GTX1080TI,
    SearchResourceError,
    find_best_strategy,
    naive_bf_strategy,
)
from repro.models import inception_v3


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    graph = inception_v3()

    print("== graph structure (paper Fig. 5 / Section III-C) ==")
    rep = section_3c_report(graph, ps=(p,))
    for key in ("nodes", "edges", "nodes_degree_lt_5", "nodes_degree_ge_5",
                "bf_max_dependent", "generateseq_max_dependent"):
        print(f"  {key:28s} {rep[key]}")
    print(f"  BF combination bound         {rep['bf_combinations_bound']:.2e}")
    print(f"  GENERATESEQ bound            {rep['generateseq_combinations_bound']:.2e}")

    space = ConfigSpace.build(graph, p)
    tables = CostModel(GTX1080TI).build_tables(graph, space)

    print(f"\n== breadth-first DP (recurrence 2), p={p} ==")
    try:
        naive_bf_strategy(graph, space, tables)
        print("  unexpectedly fit in budget")
    except SearchResourceError as exc:
        print(f"  OOM, as in Table I: {exc}")

    print(f"\n== FINDBESTSTRATEGY (GENERATESEQ), p={p} ==")
    result = find_best_strategy(graph, space, tables)
    print(f"  found in {result.elapsed:.2f}s, cost {result.cost:.3e}")
    print("  parallel layers (modules A-D stay data-parallel, module E "
          "and the FC head go hybrid):")
    print(result.strategy.format_table(graph, only_parallel=False))


if __name__ == "__main__":
    main()
