#!/usr/bin/env python
"""Bring your own network: define operators, wire a graph, search it.

Builds a two-tower recommendation-style model (embedding towers feeding a
shared MLP head) that is not in the model zoo, to show the full public
operator/graph API: custom iteration spaces, concat fan-in, and strategy
inspection with a per-layer cost breakdown.

Run:  python examples/custom_model.py
"""

from repro.core import ConfigSpace, CostModel, GTX1080TI, find_best_strategy
from repro.models import GraphBuilder
from repro.ops import Concat, Embedding, FullyConnected, SoftmaxCrossEntropy

P = 16
BATCH = 256


def build_two_tower():
    b = GraphBuilder()
    # Two embedding towers with very different vocabulary sizes.
    b.add(Embedding("user_emb", batch=BATCH, vocab=1_000_000, dim=64))
    b.add(Embedding("item_emb", batch=BATCH, vocab=50_000, dim=64))
    b.add(FullyConnected("user_fc", batch=BATCH, in_dim=64, out_dim=128),
          inputs={"in": "user_emb"})
    b.add(FullyConnected("item_fc", batch=BATCH, in_dim=64, out_dim=128),
          inputs={"in": "item_emb"})
    # Concatenate tower outputs along the feature axis.
    b.add(Concat("concat", parts=[128, 128], batch=BATCH, hw=None,
                 axis_name="n"),
          inputs={"in0": "user_fc", "in1": "item_fc"})
    b.add(FullyConnected("head", batch=BATCH, in_dim=256, out_dim=512),
          inputs={"in": "concat"})
    b.add(FullyConnected("scores", batch=BATCH, in_dim=512, out_dim=10_000),
          inputs={"in": "head"})
    b.add(SoftmaxCrossEntropy("loss", batch=BATCH, classes=10_000),
          inputs={"in": "scores"})
    return b.build()


def main() -> None:
    graph = build_two_tower()
    graph.validate()
    print(f"custom graph: {len(graph)} nodes, "
          f"{graph.stats()['total_params'] / 1e6:.1f}M parameters")

    space = ConfigSpace.build(graph, P)
    tables = CostModel(GTX1080TI).build_tables(graph, space)
    result = find_best_strategy(graph, space, tables)

    print(f"\nbest strategy on p={P} (found in {result.elapsed * 1e3:.0f} ms):")
    print(result.strategy.format_table(graph))

    print("\nper-term cost breakdown (FLOP-equivalents):")
    for term, cost in sorted(result.strategy.breakdown(tables).items(),
                             key=lambda kv: -kv[1])[:8]:
        print(f"  {term:28s} {cost:12.4e}")

    # The big user-vocabulary table gets sharded; the small one may not.
    user = result.strategy["user_emb"]
    print(f"\nuser_emb config (bdv)  = {user}  <- the 1M-row table shards")
    print(f"item_emb config (bdv)  = {result.strategy['item_emb']}")


if __name__ == "__main__":
    main()
