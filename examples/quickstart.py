#!/usr/bin/env python
"""Quickstart: find a parallelization strategy for an MLP on 8 GPUs.

Builds a small computation graph, searches for the best hybrid strategy
with PaSE's dynamic program, compares it against data parallelism, and
simulates both on an 8-GPU node.

Run:  python examples/quickstart.py
"""

from repro.baselines import data_parallel_strategy
from repro.cluster import simulate_step
from repro.core import ConfigSpace, CostModel, GTX1080TI, find_best_strategy
from repro.models import mlp

P = 8


def main() -> None:
    # 1. A computation graph (one node per layer, edges carry tensors).
    graph = mlp(batch=64, in_dim=784, hidden=(4096, 4096), classes=1000)
    print(f"graph: {len(graph)} layers, "
          f"{graph.stats()['total_params'] / 1e6:.1f}M parameters\n")

    # 2. Enumerate valid configurations and precompute the cost oracle.
    space = ConfigSpace.build(graph, P)
    tables = CostModel(GTX1080TI).build_tables(graph, space)

    # 3. Search (FINDBESTSTRATEGY: GENERATESEQ ordering + tensorized DP).
    result = find_best_strategy(graph, space, tables)
    print(f"search took {result.elapsed * 1e3:.1f} ms, "
          f"analytic cost {result.cost:.3e} FLOP-equivalents")
    print(result.strategy.format_table(graph))

    # 4. Compare with plain data parallelism under the same oracle...
    dp = data_parallel_strategy(graph, P)
    print(f"\nanalytic cost ratio dp/ours: "
          f"{dp.cost(tables) / result.cost:.2f}x")

    # 5. ...and on the discrete-event cluster simulator.
    rep_ours = simulate_step(graph, result.strategy, GTX1080TI, P)
    rep_dp = simulate_step(graph, dp, GTX1080TI, P)
    print(f"simulated: ours {rep_ours.throughput:,.0f} samples/s vs "
          f"data parallel {rep_dp.throughput:,.0f} samples/s "
          f"({rep_ours.throughput / rep_dp.throughput:.2f}x)")


if __name__ == "__main__":
    main()
