#!/usr/bin/env python
"""Quickstart: find a parallelization strategy for an MLP on 8 GPUs.

Builds a small computation graph, searches for the best hybrid strategy
with PaSE's dynamic program via the `repro.api` facade, compares it
against data parallelism, and simulates both on an 8-GPU node — with a
trace of where the search spent its time.

Run:  python examples/quickstart.py
"""

from repro.api import Problem, RunContext, search, simulate
from repro.baselines import data_parallel_strategy
from repro.models import mlp
from repro.obs import Tracer

P = 8


def main() -> None:
    # 1. A computation graph (one node per layer, edges carry tensors),
    #    bound to a device count and machine model.
    graph = mlp(batch=64, in_dim=784, hidden=(4096, 4096), classes=1000)
    prob = Problem.from_graph(graph, P)
    print(f"graph: {len(graph)} layers, "
          f"{graph.stats()['total_params'] / 1e6:.1f}M parameters\n")

    # 2. Search (FINDBESTSTRATEGY: GENERATESEQ ordering + tensorized DP),
    #    tracing each pipeline phase.
    ctx = RunContext(tracer=Tracer())
    outcome = search(prob, ctx=ctx)
    result = outcome.result
    print(f"search took {result.elapsed * 1e3:.1f} ms, "
          f"analytic cost {result.cost:.3e} FLOP-equivalents")
    print(result.strategy.format_table(graph))
    print()
    print(ctx.tracer.summary())

    # 3. Compare with plain data parallelism under the same oracle...
    dp = data_parallel_strategy(graph, P)
    tables = outcome.tables
    print(f"\nanalytic cost ratio dp/ours: "
          f"{dp.cost(tables) / result.cost:.2f}x")

    # 4. ...and on the discrete-event cluster simulator.
    rep_ours = simulate(prob, result)
    rep_dp = simulate(prob, dp)
    print(f"simulated: ours {rep_ours.throughput:,.0f} samples/s vs "
          f"data parallel {rep_dp.throughput:,.0f} samples/s "
          f"({rep_ours.throughput / rep_dp.throughput:.2f}x)")


if __name__ == "__main__":
    main()
